"""Tests for the receive-window cap and mark-on-dequeue variants."""

import pytest

from repro.core.marking import DoubleThresholdMarker, REDMarker, SingleThresholdMarker
from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue
from repro.sim.tcp.flow import open_flow
from repro.sim.tcp.sender import DctcpSender
from repro.sim.topology import Network, dumbbell
from repro.sim.apps.incast import FanInApp
from repro.sim.topology import paper_testbed
from repro.experiments.protocols import dctcp_testbed


def make_pair():
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    net.connect(a, b, 1e9, 25e-6, FifoQueue(10e6), FifoQueue(10e6))
    net.finalize_routes()
    return net, a, b


class TestReceiveWindow:
    def test_in_flight_never_exceeds_rwnd(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=500,
                         receive_window=4, initial_cwnd=50)
        flow.start()
        peak = {"inflight": 0}

        def watch():
            peak["inflight"] = max(peak["inflight"], flow.sender.in_flight)
            if not flow.completed:
                net.sim.schedule(20e-6, watch)

        net.sim.schedule(0.0, watch)
        net.sim.run(until=5.0)
        assert flow.completed
        assert peak["inflight"] <= 4

    def test_throughput_limited_to_window_per_rtt(self):
        net, a, b = make_pair()
        done = []
        flow = open_flow(a, b, DctcpSender, total_packets=200,
                         receive_window=2, on_complete=done.append)
        flow.start()
        net.sim.run(until=5.0)
        # ~2 packets per RTT (~62 us on this direct link) -> ~6 ms,
        # far above the ~0.3 ms an unconstrained window would take.
        assert done[0] > 0.004

    def test_invalid_rwnd_rejected(self):
        net, a, b = make_pair()
        with pytest.raises(ValueError):
            open_flow(a, b, DctcpSender, total_packets=1, receive_window=0)

    def test_rwnd_cap_mitigates_incast(self):
        """The classic mitigation: cap each worker's window so the
        aggregate fits the switch buffer - the collapse point moves out."""

        def goodput(rwnd):
            protocol = dctcp_testbed()
            tb = paper_testbed(protocol.marker_factory)
            kwargs = dict(
                n_flows=38,  # past the uncapped collapse point
                bytes_per_flow=64 * 1024,
                n_queries=5,
                sender_cls=protocol.sender_cls,
                initial_cwnd=2,
                start_jitter=50e-6,
            )
            if rwnd is not None:
                kwargs["receive_window"] = rwnd
            app = FanInApp(tb.aggregator, tb.workers, **kwargs)
            app.start()
            tb.sim.run(until=200.0)
            return app.overall_goodput_bps()

        uncapped = goodput(None)
        capped = goodput(2)
        assert uncapped < 0.5e9  # collapsed
        assert capped > 0.9e9  # saved by the window cap


class TestMarkOnDequeue:
    def make_packet(self, seq):
        return Packet(flow_id=1, src=0, dst=1, seq=seq, size_bytes=1500)

    def test_departure_marking_uses_remaining_queue(self):
        q = FifoQueue(
            1e6,
            marker=SingleThresholdMarker.from_threshold(2),
            mark_on_dequeue=True,
        )
        packets = [self.make_packet(i) for i in range(4)]
        for p in packets:
            q.enqueue(p)
        assert not any(p.ce for p in packets)  # nothing marked on arrival
        out0 = q.dequeue()  # leaves 3 behind -> >= 2 -> marked
        out1 = q.dequeue()  # leaves 2 -> marked
        out2 = q.dequeue()  # leaves 1 -> not marked
        out3 = q.dequeue()  # leaves 0 -> not marked
        assert [out0.ce, out1.ce, out2.ce, out3.ce] == [
            True, True, False, False,
        ]
        assert q.stats.marked == 2

    def test_stateful_marker_observes_arrivals(self):
        """Regression: in dequeue-marking mode the DT-DCTCP hysteresis
        never saw the arrival process, so it could not know the queue
        was *rising* when the departure decision fell inside the
        [K1, K2) gap."""
        q = FifoQueue(
            1e6,
            marker=DoubleThresholdMarker.from_thresholds(2, 4, deadband=0.0),
            mark_on_dequeue=True,
        )
        for i in range(3):
            q.enqueue(self.make_packet(i))
        # The marker watched the queue rise 0 -> 1 -> 2 through K1.
        assert q.marker.marking is True
        out = q.dequeue()  # leaves 2 behind: in-gap, held ON -> marked
        assert out.ce is True
        assert q.stats.marked == 1

    def test_unobserved_hysteresis_would_hold_off(self):
        """The counterfactual to the regression above: a marker that
        never saw the arrivals holds its initial OFF state at the same
        in-gap occupancy."""
        marker = DoubleThresholdMarker.from_thresholds(2, 4, deadband=0.0)
        assert marker.should_mark(2) is False  # no direction history

    def test_enqueue_marking_not_applied_in_dequeue_mode(self):
        q = FifoQueue(
            1e6,
            marker=DoubleThresholdMarker.from_thresholds(2, 4, deadband=0.0),
            mark_on_dequeue=True,
        )
        packets = [self.make_packet(i) for i in range(6)]
        for p in packets:
            q.enqueue(p)
        # Arrivals are observed but never marked in dequeue mode.
        assert not any(p.ce for p in packets)
        assert q.stats.marked == 0

    def test_markers_without_observe_fall_back_to_should_mark(self):
        """RED has no observe() hook; its EWMA still follows arrivals
        in dequeue-marking mode via a discarded should_mark() call."""
        marker = REDMarker(min_th=2, max_th=50, max_p=1.0, weight=1.0)
        q = FifoQueue(1e6, marker=marker, mark_on_dequeue=True)
        for i in range(4):
            q.enqueue(self.make_packet(i))
        # weight=1.0 -> average tracks the last observed occupancy (3).
        assert marker.average_queue == pytest.approx(3.0)

    def test_arrival_marking_unchanged_by_default(self):
        q = FifoQueue(1e6, marker=SingleThresholdMarker.from_threshold(2))
        packets = [self.make_packet(i) for i in range(4)]
        for p in packets:
            q.enqueue(p)
        assert [p.ce for p in packets] == [False, False, True, True]

    def test_end_to_end_queue_regulation_with_dequeue_marking(self):
        from repro.sim.apps.bulk import launch_bulk_flows
        from repro.sim.trace import QueueMonitor
        from repro.sim.link import Interface

        nw = dumbbell(4, lambda: SingleThresholdMarker.from_threshold(40))
        # Swap the bottleneck for a dequeue-marking one.
        marked = FifoQueue(
            nw.bottleneck_queue.capacity_bytes,
            marker=SingleThresholdMarker.from_threshold(40),
            mark_on_dequeue=True,
        )
        iface = nw.network.interface_between(
            nw.switch.node_id, nw.receiver.node_id
        )
        iface.queue = marked
        launch_bulk_flows(nw)
        monitor = QueueMonitor(nw.sim, marked, interval=10e-6)
        monitor.start()
        nw.sim.run(until=0.02)
        queue = monitor.series(after=0.008)
        assert 20 < queue.mean() < 70
        assert marked.stats.marked > 0
