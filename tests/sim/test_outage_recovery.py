"""TCP resilience under link outages, and route-cache soundness.

The regression half: an outage *longer than the RTO backoff cap* must
not wedge the sender — retries keep firing at ``max_rto`` pace, so the
flow resumes within a bounded time of link-up, under both
``REPRO_TIMER_MODEL`` kernels.  Before the cap flowed through the
campaign plumbing, a single unlucky doubling could sleep a flow past
the entire measurement window.

The routing half attacks the fast datapath's memoized bound-``send``
entries directly: a downed egress must never be used (neither from the
FIB nor from the cache), re-routing during the outage goes over the
surviving ECMP members, and recovery restores the pristine group in
its original member order so flow placement after a flap is
byte-identical to a fabric that never flapped.
"""

from __future__ import annotations

import pytest

from repro.core.marking import SingleThresholdMarker
from repro.sim.chaos import ChaosSchedule
from repro.sim.datapath import datapath
from repro.sim.invariants import InvariantWatchdog
from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue
from repro.sim.tcp.flow import open_flow
from repro.sim.tcp.sender import DctcpSender, timer_model
from repro.sim.topology import Network, dumbbell


class TestOutageRecovery:
    """Senders survive outages that outlast the capped RTO backoff."""

    @pytest.mark.parametrize("timer", ["eager", "soft-deadline"])
    def test_flow_resumes_after_outage_longer_than_max_rto(self, timer):
        min_rto, max_rto = 1e-3, 0.02
        # Strike 200 us in — mid-transfer — and keep the link dark for
        # half a second, far beyond the 20 ms backoff cap.
        outage_start, outage_len = 2e-4, 0.5
        with timer_model(timer):
            network = dumbbell(
                1, lambda: SingleThresholdMarker.from_threshold(40.0),
                rtt=1e-4,
            )
            ChaosSchedule(seed=0).outage(
                "switch", "client", t0=outage_start, duration=outage_len,
            ).install(network.network)
            watchdog = InvariantWatchdog(network.network)
            done = []
            flow = open_flow(
                network.senders[0],
                network.receiver,
                sender_cls=DctcpSender,
                total_packets=200,
                on_complete=done.append,
                min_rto=min_rto,
                max_rto=max_rto,
            )
            flow.start()
            network.sim.run(until=1.0)
            watchdog.check()  # in particular: no wedged sender

        assert done, "flow never completed after the outage"
        # Backoff is capped, so the first successful retry lands within
        # one max_rto of link-up and the rest of the flow takes ~ms.
        recovery = done[0] - (outage_start + outage_len)
        assert 0.0 < recovery < 3 * max_rto
        # The outage genuinely exercised the backoff path: during 0.5 s
        # of darkness a capped sender must keep probing.
        assert flow.sender.timeouts >= outage_len / max_rto
        assert flow.sender.in_flight == 0

    @pytest.mark.parametrize("timer", ["eager", "soft-deadline"])
    def test_uncapped_sender_recovers_too_just_slower(self, timer):
        # Sanity on the default 60 s cap: exponential backoff alone may
        # not wedge the flow — the timer must still be armed throughout
        # (the watchdog checks exactly that at every audit).
        with timer_model(timer):
            network = dumbbell(
                1, lambda: SingleThresholdMarker.from_threshold(40.0),
                rtt=1e-4,
            )
            ChaosSchedule(seed=0).outage(
                "switch", "client", t0=2e-4, duration=0.05,
            ).install(network.network)
            watchdog = InvariantWatchdog(network.network)
            done = []
            flow = open_flow(
                network.senders[0],
                network.receiver,
                sender_cls=DctcpSender,
                total_packets=500,
                on_complete=done.append,
                min_rto=1e-3,
            )
            flow.start()
            watchdog.start(interval=5e-3)
            network.sim.run(until=1.0)
            watchdog.check()
        assert done, "flow never completed after the outage"
        assert flow.sender.timeouts > 0


def _diamond():
    """src -> s1 -> {s2 | s3} -> s4 -> dst: one ECMP choice at s1."""
    net = Network()
    src = net.add_host("src")
    dst = net.add_host("dst")
    s1 = net.add_switch("s1")
    s2 = net.add_switch("s2")
    s3 = net.add_switch("s3")
    s4 = net.add_switch("s4")
    for a, b in (
        (src, s1), (s1, s2), (s1, s3), (s2, s4), (s3, s4), (s4, dst),
    ):
        net.connect(
            a, b, 1e9, 1e-6,
            queue_a_to_b=FifoQueue(1e6, name=f"{a.name}>{b.name}"),
            queue_b_to_a=FifoQueue(1e6, name=f"{b.name}>{a.name}"),
        )
    net.finalize_routes(ecmp_seed=0)
    return net, src, dst, s1, s2, s3


def _burst(net, src, dst, t0: float, flows=range(16)):
    for i, flow_id in enumerate(flows):
        net.sim.schedule_at(
            t0 + i * 20e-6,
            lambda f=flow_id: src.send(
                Packet.acquire(flow_id=f, src=src.node_id, dst=dst.node_id,
                               seq=0, size_bytes=1500)
            ),
        )


class TestRouteCacheUnderOutage:
    def test_downed_egress_never_used_and_recovery_is_pristine(self):
        with datapath("fast"):
            net, src, dst, s1, s2, s3 = _diamond()
            pristine_group = s1.fib[dst.node_id]
            assert len(pristine_group) == 2, "diamond is not ECMP at s1"
            via_s2 = net.interface_between(s1.node_id, s2.node_id)
            via_s3 = net.interface_between(s1.node_id, s3.node_id)

            ChaosSchedule(seed=0).outage(
                "s1", "s2", t0=1e-3, duration=1e-3, direction="a->b"
            ).install(net)

            observed = {}

            def snapshot(label):
                observed[label] = (
                    via_s2.queue.stats.enqueued,
                    via_s3.queue.stats.enqueued,
                    dict(s1._route_cache),
                )

            _burst(net, src, dst, t0=0.0)             # warm the cache
            net.sim.schedule_at(1.1e-3, snapshot, "down")
            _burst(net, src, dst, t0=1.2e-3)          # mid-outage traffic
            net.sim.schedule_at(1.9e-3, snapshot, "mid")
            _burst(net, src, dst, t0=2.5e-3)          # after recovery
            net.sim.run(until=5e-3)

            # Going down cleared every memoized bound-send.
            assert observed["down"][2] == {}
            # Mid-outage: all 16 flows re-resolved onto the survivor;
            # the downed egress was never offered a packet.
            s2_down, s3_down, _ = observed["down"]
            s2_mid, s3_mid, cache_mid = observed["mid"]
            assert s2_mid == s2_down
            assert s3_mid == s3_down + 16
            assert cache_mid, "fast datapath memoized nothing"
            assert all(
                bound.__self__ is via_s3 for bound in cache_mid.values()
            )

            # Recovery restored the pristine group, same member order,
            # and post-recovery memoization agrees with the pure hash —
            # i.e. placement is identical to a never-flapped fabric.
            assert s1.fib[dst.node_id] == pristine_group
            for flow_id in range(16):
                probe = Packet(flow_id=flow_id, src=src.node_id,
                               dst=dst.node_id, seq=0, size_bytes=1500)
                key = (flow_id, src.node_id, dst.node_id)
                assert s1._route_cache[key].__self__ is s1.route_for(probe)
            # Both members are genuinely in play again after recovery.
            assert via_s2.queue.stats.enqueued > s2_mid

    def test_total_partition_makes_destination_unroutable(self):
        with datapath("fast"):
            net, src, dst, s1, s2, s3 = _diamond()
            (
                ChaosSchedule(seed=0)
                .outage("s1", "s2", t0=1e-3, duration=1e-3, direction="a->b")
                .outage("s1", "s3", t0=1e-3, duration=1e-3, direction="a->b")
                .install(net)
            )
            _burst(net, src, dst, t0=1.2e-3)
            net.sim.run(until=3e-3)
            # No surviving member: the destination was withdrawn and all
            # 16 packets counted (and recycled) as unroutable.
            assert s1.packets_unroutable == 16
            # Recovery reinstalled the full group.
            assert len(s1.fib[dst.node_id]) == 2

    def test_reference_datapath_sees_identical_rerouting(self):
        def run(path):
            with datapath(path):
                net, src, dst, s1, s2, s3 = _diamond()
                ChaosSchedule(seed=0).outage(
                    "s1", "s2", t0=1e-3, duration=1e-3, direction="a->b"
                ).install(net)
                _burst(net, src, dst, t0=0.0)
                _burst(net, src, dst, t0=1.2e-3)
                _burst(net, src, dst, t0=2.5e-3)
                net.sim.run(until=5e-3)
                via_s2 = net.interface_between(s1.node_id, s2.node_id)
                via_s3 = net.interface_between(s1.node_id, s3.node_id)
                return (
                    via_s2.queue.stats.enqueued,
                    via_s3.queue.stats.enqueued,
                    s1.packets_forwarded,
                    s1.packets_unroutable,
                    net.sim.events_processed,
                )

        assert run("fast") == run("reference")
