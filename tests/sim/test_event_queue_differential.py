"""Differential tests: calendar-queue kernel vs the binary-heap oracle.

The calendar queue's contract (ISSUE 7) is *exact* equivalence with the
PR 4 heap: identical pop order on any schedule — equal timestamps break
ties by scheduling sequence, cancellations are skipped, far-future
outliers that force a bucket-width resize keep their place, ``stop()``/
budget/``until`` cut the run at the same event, and reset rewinds both
kernels to indistinguishable states.  The flat packet core's contract is
the same story one level up: ``post``-ed events and column-stored log
records replay byte-identically against the boxed-object oracle.

Two layers of evidence:

* hypothesis property tests drive both kernels through random operation
  programs (ties, cancels, self-rescheduling chains, sparse outliers,
  mid-run stops) under three run regimes (free-running, event-budget
  steps, ``until`` steps) and require identical traces;
* end-to-end kernel-matrix tests run Figure 1 (queue oscillation),
  Figure 14/15 (incast collapse) and a PR 6 leaf-spine campaign cell
  under all four ``REPRO_EVENT_QUEUE`` x ``REPRO_PACKET_CORE`` combos
  and require results identical to the heap+object oracle.
"""

from __future__ import annotations

import dataclasses
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.grid import CampaignGrid
from repro.campaign.cells import run_cell
from repro.exec.cases import Case
from repro.experiments.fig01_oscillation import (
    EXPERIMENT as FIG01_EXPERIMENT,
    run_case as fig01_run_case,
)
from repro.experiments.fig14_incast import (
    TESTBED_INITIAL_CWND,
    TESTBED_START_JITTER,
)
from repro.experiments.protocols import dctcp_testbed
from repro.sim.apps.incast import FanInApp
from repro.sim.engine import Simulator, event_queue
from repro.sim.packet_core import packet_core
from repro.sim.packet_log import PacketLogger
from repro.sim.topology import paper_testbed

KB = 1024

COMBOS = tuple(
    itertools.product(("calendar", "heap"), ("flat", "object"))
)
ORACLE = ("heap", "object")


# ----------------------------------------------------------------------
# Property layer: random operation programs, identical pop order.
# ----------------------------------------------------------------------

_times = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
_gaps = st.floats(
    min_value=0.0, max_value=3.0, allow_nan=False, allow_infinity=False
)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("at"), _times),
        st.tuples(st.just("post"), _times),
        # k events on the same instant: tie-break order must hold.
        st.tuples(st.just("tie"), _times, st.integers(2, 4)),
        # Cancel the j-th (mod count) handle scheduled so far.
        st.tuples(st.just("cancel"), st.integers(0, 1000)),
        # An event at t that cancels handle j mod count mid-run.
        st.tuples(st.just("cancel_at"), _times, st.integers(0, 1000)),
        # Self-rescheduling chain: n hops of `gap` starting at t.
        st.tuples(st.just("chain"), _times, st.integers(1, 10), _gaps),
        # Sparse far-future outlier (drives bucket-width resizing).
        st.tuples(st.just("far"), _times),
        st.tuples(st.just("stop"), _times),
    ),
    min_size=1,
    max_size=40,
)


def _chain_cb(sim, trace, label, remaining, gap):
    trace.append((sim.now, "chain", label))
    if remaining > 0:
        sim.schedule(gap, _chain_cb, sim, trace, label, remaining - 1, gap)


def _drive(impl: str, ops, mode: str):
    """Apply one op program to a fresh kernel; return its full trace."""
    sim = Simulator(event_queue=impl)
    trace = []
    handles = []

    def record(label):
        trace.append((sim.now, "fire", label))

    for i, op in enumerate(ops):
        kind = op[0]
        if kind == "at":
            handles.append(sim.schedule_at(op[1], record, i))
        elif kind == "post":
            sim.post_at(op[1], record, i)
        elif kind == "tie":
            for k in range(op[2]):
                handles.append(sim.schedule_at(op[1], record, (i, k)))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "cancel_at":
            j = op[2]

            def cancel_later(j=j):
                if handles:
                    handles[j % len(handles)].cancel()

            sim.post_at(op[1], cancel_later)
        elif kind == "chain":
            sim.schedule_at(op[1], _chain_cb, sim, trace, i, op[2], op[3])
        elif kind == "far":
            handles.append(sim.schedule_at(op[1] + 1e3, record, (i, "far")))
        elif kind == "stop":
            sim.post_at(op[1], sim.stop)

    if mode == "free":
        # stop() ops end a run early; keep running until drained.
        for _ in range(len(ops) + 2):
            sim.run()
            if sim.pending_events == 0:
                break
    elif mode == "budget":
        for _ in range(10_000):
            sim.run(max_events=7)
            if sim.pending_events == 0:
                break
    else:  # "until" steps: exercises pruning and clock fast-forward
        for horizon in (0.5, 1.0, 2.5, 5.0, 10.0, 1e3, 2e3):
            sim.run(until=horizon)
        for _ in range(len(ops) + 2):
            sim.run()
            if sim.pending_events == 0:
                break
        trace.append(("final-now", sim.now))

    trace.append(
        ("counters", sim.events_scheduled, sim.events_processed)
    )
    return trace


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
@pytest.mark.parametrize("mode", ["free", "budget", "until"])
def test_calendar_matches_heap_on_random_programs(mode, ops):
    assert _drive("calendar", ops, mode) == _drive("heap", ops, mode)


@settings(max_examples=20, deadline=None)
@given(ops=_ops)
def test_reset_rewinds_both_kernels_identically(ops):
    traces = []
    for impl in ("calendar", "heap"):
        sim = Simulator(event_queue=impl)
        trace = []
        for i, op in enumerate(ops):
            if op[0] in ("at", "post", "far"):
                t = op[1] + (1e3 if op[0] == "far" else 0.0)
                sim.schedule_at(t, trace.append, (sim.now, i))
        sim.run(until=2.0)
        sim.reset()
        assert sim.pending_events == 0
        assert sim.now == 0.0
        # A replay after reset must look like a fresh process.
        for t in (1.0, 1.0, 0.5):
            sim.schedule_at(t, trace.append, ("replay", t, sim.events_scheduled))
        sim.run()
        traces.append(trace)
    assert traces[0] == traces[1]


# ----------------------------------------------------------------------
# End-to-end layer: the kernel matrix on real experiments.
# ----------------------------------------------------------------------


def _matrix(run):
    """Run ``run()`` under every kernel combo; compare to the oracle."""
    results = {}
    for eq, pc in COMBOS:
        with event_queue(eq), packet_core(pc):
            results[(eq, pc)] = run()
    oracle = results[ORACLE]
    for combo, result in results.items():
        assert result == oracle, f"{combo} diverged from heap+object oracle"
    return oracle


def _normalised_records(log: PacketLogger):
    """Delivery records with flow ids rebased to zero (process-global
    flow-id counters differ between runs; rebasing makes them
    positional)."""
    records = log.records
    if not records:
        return []
    base = min(r.flow_id for r in records)
    return [dataclasses.replace(r, flow_id=r.flow_id - base) for r in records]


def test_fig01_oscillation_identical_across_kernel_matrix():
    """Figure 1 queue trace: all four combos, byte-identical samples."""

    def run():
        case = Case(
            experiment=FIG01_EXPERIMENT,
            label="diff/N=10",
            params={
                "protocol": "dctcp-sim",
                "n_flows": 10,
                "sim_duration": 0.012,
                "warmup": 0.002,
                "sample_interval": 1e-4,
            },
        )
        return fig01_run_case(case)

    result = _matrix(run)
    assert len(result["queue"]) > 50, "scenario too small to be meaningful"


def test_fig14_incast_identical_across_kernel_matrix():
    """Fig 14/15 collapse point: full packet trace + queue stats."""

    def run():
        protocol = dctcp_testbed()
        testbed = paper_testbed(protocol.marker_factory, bandwidth_bps=1e9)
        bottleneck_iface = testbed.network.interface_between(
            testbed.core_switch.node_id, testbed.aggregator.node_id
        )
        log = PacketLogger().attach(bottleneck_iface)
        app = FanInApp(
            testbed.aggregator,
            testbed.workers,
            n_flows=20,
            bytes_per_flow=64 * KB,
            n_queries=1,
            sender_cls=protocol.sender_cls,
            initial_cwnd=TESTBED_INITIAL_CWND,
            start_jitter=TESTBED_START_JITTER,
            on_done=testbed.sim.stop,
        )
        app.start()
        testbed.sim.run(until=60.0)
        raw = testbed.bottleneck_queue.stats
        stats = {field: getattr(raw, field) for field in raw.__slots__}
        per_query = [
            (r.completion_time, r.timeouts, r.retransmits)
            for r in app.results
        ]
        return (
            _normalised_records(log),
            stats,
            per_query,
            testbed.sim.events_processed,
        )

    records, _stats, _queries, _events = _matrix(run)
    assert len(records) > 500, "scenario too small to be meaningful"


def test_leaf_spine_campaign_cell_identical_across_kernel_matrix():
    """One PR 6 fabric cell: FCT list, queue stats, mark/drop totals."""
    grid = CampaignGrid(
        thresholds=((40.0,),),
        loads=(0.2,),
        fan_ins=(2,),
        scenarios=("buildup",),
        seeds=(1,),
        duration=0.006,
        warmup=0.001,
    )
    params = grid.expand()[0].params

    result = _matrix(lambda: run_cell(params))
    assert result["flows_started"] > 0, "cell generated no traffic"
