"""Differential test: busy-until fast lane vs two-event reference oracle.

The fast lane's contract (ISSUE 2) is *exact* equivalence: same
delivery trace — times, flow ids, sequence numbers, CE/ECE bits — and
same queue counters, down to the heap's tie-breaking order.  These
tests run multi-flow DCTCP and DT-DCTCP dumbbells (synchronized starts,
the tie-heavy worst case) under both link models and compare
everything observable.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.marking import DoubleThresholdMarker, SingleThresholdMarker
from repro.sim.apps.bulk import launch_bulk_flows
from repro.sim.link import link_model
from repro.sim.packet_log import PacketLogger
from repro.sim.tcp.sender import DctcpSender
from repro.sim.topology import dumbbell


def _marker_factory(protocol):
    if protocol == "dctcp":
        return lambda: SingleThresholdMarker.from_threshold(40.0)
    return lambda: DoubleThresholdMarker.from_thresholds(30.0, 50.0)


def _run(protocol: str, model: str, n_flows: int, duration: float):
    """One dumbbell run; returns (delivery records, queue stats, flows)."""
    with link_model(model):
        network = dumbbell(n_flows, _marker_factory(protocol))
        bottleneck_iface = network.network.interface_between(
            network.switch.node_id, network.receiver.node_id
        )
        log = PacketLogger().attach(bottleneck_iface)
        flows = launch_bulk_flows(network, sender_cls=DctcpSender)
        base = min(f.sender.flow_id for f in flows)
        network.sim.run(until=duration)
        # Flow ids come from a process-global counter; normalise so the
        # two runs compare positionally.
        records = [
            dataclasses.replace(r, flow_id=r.flow_id - base)
            for r in log.records
        ]
        raw = network.bottleneck_queue.stats
        stats = {
            field: getattr(raw, field) for field in raw.__slots__
        }
        per_flow = [
            (f.sender.packets_sent, f.sender.timeouts, f.receiver.packets_received)
            for f in flows
        ]
    return records, stats, per_flow


@pytest.mark.parametrize("protocol", ["dctcp", "dt-dctcp"])
def test_delivery_traces_and_queue_stats_identical(protocol):
    reference = _run(protocol, "two-event", n_flows=5, duration=0.004)
    fast = _run(protocol, "busy-until", n_flows=5, duration=0.004)

    ref_records, ref_stats, ref_flows = reference
    fast_records, fast_stats, fast_flows = fast

    assert len(ref_records) > 500, "scenario too small to be meaningful"
    assert fast_records == ref_records
    assert fast_stats == ref_stats
    assert fast_flows == ref_flows


def test_busy_until_halves_heap_traffic():
    """Same simulated run, roughly half the processed events."""
    def events(model):
        with link_model(model):
            network = dumbbell(
                3, lambda: SingleThresholdMarker.from_threshold(40.0)
            )
            launch_bulk_flows(network, sender_cls=DctcpSender)
            network.sim.run(until=0.002)
            return network.sim.events_processed

    reference = events("two-event")
    fast = events("busy-until")
    # Every packet-hop costs the oracle two events (tx-done + delivery)
    # and the fast lane one; timers and app events dilute the exact 2x.
    assert fast < 0.65 * reference
