"""Tests for the TCP senders (Reno / ECN-Reno / DCTCP).

Most tests run a real sender against a real receiver over a two-host
direct link; loss and marking are injected by swapping the forward
queue for an instrumented one.
"""

import pytest

from repro.core.marking import SingleThresholdMarker
from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue
from repro.sim.tcp.flow import open_flow
from repro.sim.tcp.sender import (
    DctcpSender,
    EcnRenoSender,
    RenoSender,
    TcpSender,
)
from repro.sim.topology import Network

BW = 1e9
DELAY = 25e-6
RTT = 4 * DELAY + 2 * (1500 * 8 / BW)  # approx, with serialisation


class LossyQueue(FifoQueue):
    """Drops the packets whose data seq appears in ``drop_seqs`` (once)."""

    def __init__(self, *args, drop_seqs=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.drop_seqs = set(drop_seqs)

    def enqueue(self, packet):
        if not packet.is_ack and packet.seq in self.drop_seqs:
            self.drop_seqs.remove(packet.seq)
            self.stats.dropped += 1
            return False
        return super().enqueue(packet)


def make_pair(forward_queue=None):
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    fq = forward_queue if forward_queue is not None else FifoQueue(10e6)
    net.connect(a, b, BW, DELAY, fq, FifoQueue(10e6))
    net.finalize_routes()
    return net, a, b


class TestBasicTransfer:
    def test_sized_transfer_completes(self):
        net, a, b = make_pair()
        done = []
        flow = open_flow(a, b, DctcpSender, total_packets=50,
                         on_complete=done.append)
        flow.start()
        net.sim.run(until=1.0)
        assert flow.completed
        assert len(done) == 1
        assert flow.receiver.rcv_next == 50

    def test_no_timeouts_or_retransmits_on_clean_path(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=100)
        flow.start()
        net.sim.run(until=1.0)
        assert flow.sender.timeouts == 0
        assert flow.sender.retransmits == 0

    def test_start_delay_respected(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=1)
        flow.start(delay=0.5)
        net.sim.run(until=0.4)
        assert flow.sender.packets_sent == 0
        net.sim.run(until=1.0)
        assert flow.completed

    def test_double_start_rejected(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=1)
        flow.start()
        with pytest.raises(RuntimeError):
            flow.start()

    def test_completion_time_matches_bandwidth(self):
        net, a, b = make_pair()
        done = []
        n = 1000
        flow = open_flow(a, b, DctcpSender, total_packets=n,
                         on_complete=done.append, initial_cwnd=50)
        flow.start()
        net.sim.run(until=1.0)
        ideal = n * 1500 * 8 / BW
        assert done[0] == pytest.approx(ideal, rel=0.2)

    def test_in_flight_bounded_by_cwnd(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=500,
                         initial_cwnd=7)
        flow.start()
        net.sim.run(until=5 * RTT)
        # cwnd grows in slow start but in_flight never exceeded it.
        assert flow.sender.in_flight <= int(flow.sender.cwnd)


class TestSlowStartAndCa:
    def test_slow_start_doubles_per_rtt(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=10_000,
                         initial_cwnd=2)
        flow.start()
        net.sim.run(until=3.5 * RTT)
        # After ~3 RTTs of doubling: cwnd ~ 2 * 2^3 = 16 (loose bounds).
        assert 8 <= flow.sender.cwnd <= 40

    def test_congestion_avoidance_linear(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=100_000,
                         initial_cwnd=10)
        flow.sender.ssthresh = 10.0  # start directly in CA
        flow.start()
        net.sim.run(until=6 * RTT)
        # +1 MSS per RTT from 10: roughly 15-17 after ~6 RTTs.
        assert 12 <= flow.sender.cwnd <= 20

    def test_validation_errors(self):
        net, a, b = make_pair()
        with pytest.raises(ValueError):
            open_flow(a, b, DctcpSender, total_packets=0)
        with pytest.raises(ValueError):
            open_flow(a, b, DctcpSender, initial_cwnd=0.5)


class TestFastRetransmit:
    def test_single_loss_recovers_without_timeout(self):
        q = LossyQueue(10e6, drop_seqs={30})
        net, a, b = make_pair(q)
        flow = open_flow(a, b, DctcpSender, total_packets=100)
        flow.start()
        net.sim.run(until=1.0)
        assert flow.completed
        assert flow.sender.timeouts == 0
        assert flow.sender.retransmits >= 1

    def test_window_halved_after_fast_retransmit(self):
        q = LossyQueue(10e6, drop_seqs={40})
        net, a, b = make_pair(q)
        flow = open_flow(a, b, DctcpSender, total_packets=2000,
                         initial_cwnd=2)
        flow.start()
        peak = {"cwnd": 0.0}

        def watch():
            peak["cwnd"] = max(peak["cwnd"], flow.sender.cwnd)
            if not flow.completed:
                net.sim.schedule(RTT / 4, watch)

        net.sim.schedule(0.0, watch)
        net.sim.run(until=20 * RTT)
        assert flow.sender.ssthresh <= peak["cwnd"]
        assert flow.sender.timeouts == 0

    def test_multiple_losses_in_window_newreno(self):
        q = LossyQueue(10e6, drop_seqs={30, 32, 34})
        net, a, b = make_pair(q)
        flow = open_flow(a, b, DctcpSender, total_packets=100)
        flow.start()
        net.sim.run(until=2.0)
        assert flow.completed


class TestTimeout:
    def test_tail_loss_needs_rto(self):
        """Losing the last packet leaves no dupacks: only the RTO can
        recover it."""
        q = LossyQueue(10e6, drop_seqs={99})
        net, a, b = make_pair(q)
        done = []
        flow = open_flow(a, b, DctcpSender, total_packets=100,
                         on_complete=done.append, min_rto=0.2)
        flow.start()
        net.sim.run(until=2.0)
        assert flow.completed
        assert flow.sender.timeouts == 1
        assert done[0] >= 0.2  # paid one min-RTO

    def test_rto_collapses_window_to_one(self):
        q = LossyQueue(10e6, drop_seqs={99})
        net, a, b = make_pair(q)
        flow = open_flow(a, b, DctcpSender, total_packets=100, min_rto=0.2)
        flow.start()
        net.sim.run(until=0.21)  # just past the timeout
        assert flow.sender.cwnd <= 2.0

    def test_repeated_timeouts_back_off(self):
        """Dropping the retransmissions too forces exponential backoff."""
        q = LossyQueue(10e6, drop_seqs={99})
        net, a, b = make_pair(q)

        # Also drop the first two retransmissions of 99.
        original = q.enqueue
        state = {"rtx_drops": 2}

        def enqueue(packet):
            if (not packet.is_ack and packet.seq == 99
                    and packet.is_retransmit and state["rtx_drops"] > 0):
                state["rtx_drops"] -= 1
                q.stats.dropped += 1
                return False
            return original(packet)

        q.enqueue = enqueue
        done = []
        flow = open_flow(a, b, DctcpSender, total_packets=100,
                         on_complete=done.append, min_rto=0.2)
        flow.start()
        net.sim.run(until=5.0)
        assert flow.completed
        assert flow.sender.timeouts == 3
        # 0.2 + 0.4 + 0.8 of backoff before success.
        assert done[0] >= 1.4

    def test_go_back_n_rewind_resends_presumed_lost(self):
        q = LossyQueue(10e6, drop_seqs={95, 96, 97, 98, 99})
        net, a, b = make_pair(q)
        flow = open_flow(a, b, DctcpSender, total_packets=100, min_rto=0.2)
        flow.start()
        net.sim.run(until=3.0)
        assert flow.completed
        # One timeout covers the whole lost tail (go-back-N), not five.
        assert flow.sender.timeouts <= 2


class TestEcnReactions:
    def run_with_marking(self, sender_cls, threshold=5, n=4000, until=0.2):
        marked_q = FifoQueue(
            10e6, marker=SingleThresholdMarker.from_threshold(threshold)
        )
        net, a, b = make_pair(marked_q)
        flow = open_flow(a, b, sender_cls, total_packets=n)
        flow.start()
        net.sim.run(until=until)
        return flow, marked_q

    def test_reno_is_not_ecn_capable(self):
        flow, q = self.run_with_marking(RenoSender)
        assert q.stats.marked == 0  # non-ECT traffic is never marked

    def test_ecn_reno_halves_on_ece(self):
        flow, q = self.run_with_marking(EcnRenoSender)
        assert q.stats.marked > 0
        assert flow.sender.ece_seen > 0
        # The queue-based marking bounds the window near the threshold.
        assert flow.sender.cwnd < 50

    def test_dctcp_alpha_converges_to_marked_fraction(self):
        flow, q = self.run_with_marking(DctcpSender, until=0.4)
        sender = flow.sender
        assert 0.0 < sender.alpha < 1.0
        marked_fraction = q.stats.marked / max(q.stats.enqueued, 1)
        assert sender.alpha == pytest.approx(marked_fraction, abs=0.25)

    def test_dctcp_cut_is_proportional(self):
        """With small alpha the DCTCP cut is much gentler than half."""
        net, a, b = make_pair(
            FifoQueue(10e6, marker=SingleThresholdMarker.from_threshold(5))
        )
        flow = open_flow(a, b, DctcpSender, total_packets=10_000)
        flow.sender.alpha = 0.2
        flow.sender.cwnd = 100.0
        flow.sender.ssthresh = 50.0
        ack = Packet(flow_id=flow.flow_id, src=b.node_id, dst=a.node_id,
                     seq=-1, size_bytes=40, is_ack=True, ack_seq=0)
        ack.ece = True
        # Simulate receiving an ECE ack covering one packet.
        flow.sender.next_seq = 10
        flow.sender._high_water = 10
        ack.ack_seq = 1
        flow.sender.on_packet(ack)
        # The window boundary is crossed first, so alpha updates to
        # (1-g)*0.2 + g*1 = 0.25, then cwnd *= (1 - 0.25/2) = 87.5 -
        # far gentler than Reno's halving to 50.
        assert flow.sender.cwnd == pytest.approx(87.5, abs=0.1)

    def test_dctcp_initial_alpha_default_pessimistic(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=1)
        assert flow.sender.alpha == 1.0

    def test_dctcp_invalid_parameters(self):
        net, a, b = make_pair()
        with pytest.raises(ValueError):
            open_flow(a, b, DctcpSender, total_packets=1, g=1.5)
        with pytest.raises(ValueError):
            open_flow(a, b, DctcpSender, total_packets=1, initial_alpha=2.0)

    def test_at_most_one_cut_per_window(self):
        net, a, b = make_pair(
            FifoQueue(10e6, marker=SingleThresholdMarker.from_threshold(1))
        )
        flow = open_flow(a, b, DctcpSender, total_packets=200,
                         initial_cwnd=20)
        flow.start()
        cuts = []
        original = DctcpSender._on_ecn_feedback

        net.sim.run(until=1.0)
        # Heavy marking with alpha = 1 would zero the window if cuts were
        # per-ACK; the once-per-window rule keeps it at or above 1.
        assert flow.sender.cwnd >= 1.0
        assert flow.completed


class TestFlowWiring:
    def test_flow_ids_unique(self):
        net, a, b = make_pair()
        f1 = open_flow(a, b, DctcpSender, total_packets=1)
        f2 = open_flow(a, b, DctcpSender, total_packets=1)
        assert f1.flow_id != f2.flow_id

    def test_close_unregisters_endpoints(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=1)
        flow.close()
        # Re-registering the same flow id must now succeed.
        a.register_endpoint(flow.flow_id, flow.sender)
        b.register_endpoint(flow.flow_id, flow.receiver)

    def test_cross_simulation_flow_rejected(self):
        net1, a1, _ = make_pair()
        net2, _, b2 = make_pair()
        with pytest.raises(ValueError):
            open_flow(a1, b2, DctcpSender, total_packets=1)

    def test_sender_kwargs_forwarded(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=1, g=0.25,
                         initial_cwnd=4, min_rto=0.5)
        assert flow.sender.g == 0.25
        assert flow.sender.cwnd == 4.0
        assert flow.sender.rtt.min_rto == 0.5
