"""The REPRO_* switch registry and its README/CI parity checks."""

import pytest

from repro.sim import kernels


class TestRegistry:
    def test_every_kernel_pair_has_oracle_and_choices(self):
        for switch in kernels.kernel_switches():
            assert switch.oracle is not None
            assert switch.choices is not None
            assert switch.default in switch.choices
            assert switch.oracle in switch.choices
            assert switch.default != switch.oracle

    def test_cache_dir_is_config_not_kernel(self):
        switch = kernels.registered("REPRO_CACHE_DIR")
        assert not switch.is_kernel

    def test_unregistered_read_raises_with_fix(self):
        with pytest.raises(KeyError, match="REGISTRY"):
            kernels.registered("REPRO_BOGUS")
        with pytest.raises(KeyError, match="REGISTRY"):
            kernels.env_value("REPRO_BOGUS")

    def test_env_default_prefers_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        assert kernels.env_default("REPRO_EVENT_QUEUE") == "calendar"
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "heap")
        assert kernels.env_default("REPRO_EVENT_QUEUE") == "heap"

    def test_env_default_does_not_validate(self, monkeypatch):
        # A bad value must surface at first *use* (the kernel module's
        # own ValueError), not at registry read time — otherwise a typo
        # in the environment turns module import into the failure point.
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "bogus")
        assert kernels.env_default("REPRO_EVENT_QUEUE") == "bogus"

    def test_env_default_rejects_defaultless_switches(self):
        with pytest.raises(ValueError, match="no default"):
            kernels.env_default("REPRO_CACHE_DIR")

    def test_env_value_reads_raw(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert kernels.env_value("REPRO_CACHE_DIR") is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/x")
        assert kernels.env_value("REPRO_CACHE_DIR") == "/tmp/x"


GOOD_TABLE = """\
| variable | default | oracle | selects |
|---|---|---|---|
| `REPRO_EVENT_QUEUE` | `calendar` | `heap` | event scheduler |
| `REPRO_PACKET_CORE` | `flat` | `object` | packet-log storage |
| `REPRO_LINK_MODEL` | `busy-until` | `two-event` | transmitter |
| `REPRO_TIMER_MODEL` | `soft-deadline` | `eager` | RTO re-arm |
| `REPRO_DATAPATH` | `fast` | `reference` | per-packet datapath |
"""


class TestReadmeParity:
    def test_matching_table_is_clean(self):
        assert kernels.readme_parity_problems(GOOD_TABLE) == []

    def test_missing_row_reported(self):
        text = "\n".join(
            line for line in GOOD_TABLE.splitlines() if "TIMER" not in line
        )
        problems = kernels.readme_parity_problems(text)
        assert any("REPRO_TIMER_MODEL" in p and "no row" in p for p in problems)

    def test_wrong_default_and_oracle_reported(self):
        text = GOOD_TABLE.replace("`calendar`", "`heap`", 1)
        problems = kernels.readme_parity_problems(text)
        assert any("default" in p for p in problems)

    def test_unregistered_row_reported(self):
        text = GOOD_TABLE + "| `REPRO_MYSTERY` | `a` | `b` | ? |\n"
        problems = kernels.readme_parity_problems(text)
        assert any("REPRO_MYSTERY" in p for p in problems)


class TestCiParity:
    def test_all_pins_present_is_clean(self):
        ci = (
            "REPRO_EVENT_QUEUE=heap REPRO_PACKET_CORE=object "
            "REPRO_LINK_MODEL=two-event REPRO_TIMER_MODEL=eager "
            "REPRO_DATAPATH=reference"
        )
        assert kernels.ci_parity_problems(ci) == []

    def test_missing_pin_reported(self):
        ci = "REPRO_EVENT_QUEUE=heap REPRO_PACKET_CORE=object"
        problems = kernels.ci_parity_problems(ci)
        assert len(problems) == 3
        assert any("REPRO_LINK_MODEL=two-event" in p for p in problems)
        assert any("REPRO_TIMER_MODEL=eager" in p for p in problems)
        assert any("REPRO_DATAPATH=reference" in p for p in problems)
