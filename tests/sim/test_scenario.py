"""Tests for the declarative scenario runner."""

import pytest

from repro.sim.scenario import Scenario, ScenarioResult, run_scenario


def quick(**overrides):
    spec = dict(duration=0.01, warmup=0.004, n_flows=4)
    spec.update(overrides)
    return Scenario(**spec)


class TestScenarioValidation:
    def test_defaults_valid(self):
        Scenario()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            Scenario(protocol="cubic")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            Scenario(workload="mapreduce")

    def test_warmup_must_precede_duration(self):
        with pytest.raises(ValueError):
            Scenario(duration=0.01, warmup=0.02)

    def test_threshold_arity_enforced(self):
        with pytest.raises(ValueError):
            Scenario(protocol="dt-dctcp", thresholds=(40.0,))
        with pytest.raises(ValueError):
            Scenario(protocol="dctcp", thresholds=(30.0, 50.0))

    def test_from_dict_round_trip(self):
        spec = {
            "protocol": "dt-dctcp",
            "thresholds": [30, 50],
            "n_flows": 7,
        }
        scenario = Scenario.from_dict(spec)
        assert scenario.protocol == "dt-dctcp"
        assert scenario.thresholds == (30, 50)
        assert scenario.n_flows == 7

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_dict({"bandwidth": 1e9})


class TestBulkScenarios:
    def test_dctcp_bulk(self):
        result = run_scenario(quick())
        assert isinstance(result, ScenarioResult)
        assert 20 < result.mean_queue < 70
        assert result.goodput_bps > 9e9
        assert result.marks > 0
        assert result.mean_alpha is not None

    def test_dt_dctcp_bulk_steadier(self):
        dc = run_scenario(quick(n_flows=10))
        dt = run_scenario(
            quick(protocol="dt-dctcp", thresholds=(30, 50), n_flows=10)
        )
        assert dt.std_queue < dc.std_queue

    def test_reno_bulk_drops(self):
        result = run_scenario(quick(protocol="reno"))
        assert result.marks == 0
        assert result.mean_alpha is None

    def test_sack_flag_propagates(self):
        result = run_scenario(quick(use_sack=True))
        assert result.goodput_bps > 9e9


class TestQueryScenarios:
    def test_incast_below_collapse(self):
        result = run_scenario(
            Scenario(
                workload="incast",
                protocol="dctcp",
                thresholds=(32 * 1024 / 1500,),
                n_flows=12,
                bandwidth_bps=1e9,
                n_queries=3,
            )
        )
        assert result.goodput_bps > 0.9e9
        assert len(result.completion_times) == 3

    def test_partition_aggregate_splits_transfer(self):
        result = run_scenario(
            Scenario(
                workload="partition-aggregate",
                protocol="dctcp",
                thresholds=(32 * 1024 / 1500,),
                n_flows=8,
                bandwidth_bps=1e9,
                transfer_bytes=1024 * 1024,
                n_queries=2,
            )
        )
        # ~8.4 ms ideal for 1 MB at 1 Gbps.
        assert all(0.008 < t < 0.02 for t in result.completion_times)


class TestInvariantsWiring:
    """The opt-in watchdog audits every workload without changing it."""

    def incast_spec(self):
        return Scenario(
            workload="incast",
            protocol="dctcp",
            thresholds=(32 * 1024 / 1500,),
            n_flows=8,
            bandwidth_bps=1e9,
            n_queries=2,
        )

    def test_bulk_audits_clean_and_results_unchanged(self):
        plain = run_scenario(quick())
        audited = run_scenario(quick(), invariants=True)
        # The watchdog only reads state: identical statistics, to the bit.
        assert audited == plain

    def test_dt_dctcp_bulk_audits_clean(self):
        spec = quick(protocol="dt-dctcp", thresholds=(30.0, 50.0))
        assert run_scenario(spec, invariants=True) == run_scenario(spec)

    def test_incast_audits_clean_and_results_unchanged(self):
        plain = run_scenario(self.incast_spec())
        audited = run_scenario(self.incast_spec(), invariants=True)
        assert audited == plain

    def test_partition_aggregate_audits_clean(self):
        spec = Scenario(
            workload="partition-aggregate",
            protocol="dctcp",
            thresholds=(32 * 1024 / 1500,),
            n_flows=6,
            bandwidth_bps=1e9,
            transfer_bytes=256 * 1024,
            n_queries=1,
        )
        assert run_scenario(spec, invariants=True) == run_scenario(spec)
