"""Tests for the D2TCP related-work module."""

import pytest

from repro.core.marking import SingleThresholdMarker
from repro.sim.queues import FifoQueue
from repro.sim.tcp.d2tcp import D2tcpSender
from repro.sim.tcp.flow import open_flow
from repro.sim.tcp.sender import DctcpSender
from repro.sim.topology import Network, dumbbell


def make_pair():
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    net.connect(a, b, 1e9, 25e-6, FifoQueue(10e6), FifoQueue(10e6))
    net.finalize_routes()
    return net, a, b


class TestUrgency:
    def test_no_deadline_is_neutral(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, D2tcpSender, total_packets=100)
        assert flow.sender.urgency() == 1.0

    def test_no_rtt_sample_is_neutral(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, D2tcpSender, total_packets=100, deadline=1.0)
        assert flow.sender.urgency() == 1.0

    def test_tight_deadline_raises_urgency(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, D2tcpSender, total_packets=5000,
                         deadline=0.001)
        sender = flow.sender
        sender.rtt.on_sample(100e-6)
        sender.cwnd = 10.0
        # Needs 5000/10 RTTs ~ 50 ms >> 1 ms left -> maximum urgency.
        assert sender.urgency() == sender.d_max

    def test_loose_deadline_lowers_urgency(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, D2tcpSender, total_packets=10,
                         deadline=10.0)
        sender = flow.sender
        sender.rtt.on_sample(100e-6)
        sender.cwnd = 10.0
        # Needs ~100 us, has 10 s -> minimum urgency.
        assert sender.urgency() == sender.d_min

    def test_passed_deadline_flags_miss(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, D2tcpSender, total_packets=1000,
                         deadline=-1.0)
        sender = flow.sender
        sender.rtt.on_sample(100e-6)
        assert sender.urgency() == sender.d_max
        assert sender.deadline_missed

    def test_invalid_bounds_rejected(self):
        net, a, b = make_pair()
        with pytest.raises(ValueError):
            open_flow(a, b, D2tcpSender, total_packets=1, d_min=0.0)
        with pytest.raises(ValueError):
            open_flow(a, b, D2tcpSender, total_packets=1,
                      d_min=2.0, d_max=1.0)


class TestGammaCorrection:
    def cut_factor(self, urgency, alpha=0.5):
        """Observed multiplicative cut for a synthetic ECE ack."""
        net, a, b = make_pair()
        flow = open_flow(a, b, D2tcpSender, total_packets=10_000)
        sender = flow.sender
        sender.alpha = alpha
        sender.g = 1e-9  # freeze alpha across the synthetic update
        sender.urgency = lambda: urgency  # pin the factor
        sender.cwnd = 100.0
        sender.ssthresh = 50.0
        sender.next_seq = 10
        sender._high_water = 10
        from repro.sim.packet import Packet

        ack = Packet(flow_id=flow.flow_id, src=b.node_id, dst=a.node_id,
                     seq=-1, size_bytes=40, is_ack=True, ack_seq=1)
        ack.ece = True
        sender.on_packet(ack)
        return sender.cwnd / 100.0

    def test_neutral_urgency_matches_dctcp(self):
        # d = 1: cut = 1 - alpha/2 = 0.75 at alpha = 0.5.
        assert self.cut_factor(1.0) == pytest.approx(0.75, abs=0.01)

    def test_near_deadline_cuts_less(self):
        # d = 2: penalty alpha^2 = 0.25 -> cut 0.875.
        assert self.cut_factor(2.0) == pytest.approx(0.875, abs=0.01)

    def test_far_deadline_cuts_more(self):
        # d = 0.5: penalty sqrt(alpha) ~ 0.707 -> cut ~0.646.
        assert self.cut_factor(0.5) == pytest.approx(0.646, abs=0.01)


class TestEndToEnd:
    def test_behaves_like_dctcp_without_deadlines(self):
        def queue_stats(sender_cls):
            nw = dumbbell(
                4, lambda: SingleThresholdMarker.from_threshold(40)
            )
            from repro.sim.apps.bulk import launch_bulk_flows
            from repro.sim.trace import QueueMonitor

            launch_bulk_flows(nw, sender_cls=sender_cls)
            mon = QueueMonitor(nw.sim, nw.bottleneck_queue, 20e-6)
            mon.start()
            nw.sim.run(until=0.02)
            return mon.series(after=0.008)

        d2 = queue_stats(D2tcpSender)
        dctcp = queue_stats(DctcpSender)
        assert d2.mean() == pytest.approx(dctcp.mean(), rel=0.1)

    def test_near_deadline_flow_finishes_sooner_under_contention(self):
        """Two equal transfers compete through a marking bottleneck; the
        one with the tight deadline receives the milder cuts and lands
        first."""
        nw = dumbbell(2, lambda: SingleThresholdMarker.from_threshold(15))
        done = {}
        total = 2000
        tight = open_flow(
            nw.senders[0], nw.receiver, D2tcpSender, total_packets=total,
            deadline=0.02, on_complete=lambda t: done.setdefault("tight", t),
        )
        loose = open_flow(
            nw.senders[1], nw.receiver, D2tcpSender, total_packets=total,
            deadline=10.0, on_complete=lambda t: done.setdefault("loose", t),
        )
        tight.start()
        loose.start()
        nw.sim.run(until=5.0)
        assert tight.completed and loose.completed
        assert done["tight"] < done["loose"]
