"""Tests for the short-flow generator and the queue-buildup experiment."""

import pytest

from repro.core.marking import SingleThresholdMarker
from repro.sim.apps.short_flows import ShortFlowGenerator
from repro.sim.topology import dumbbell


def droptailish():
    return SingleThresholdMarker.from_threshold(40)


class TestShortFlowGenerator:
    def make(self, arrival_rate=2000.0, flow_bytes=15000, seed=7):
        nw = dumbbell(2, droptailish)
        gen = ShortFlowGenerator(
            nw.senders[0],
            nw.receiver,
            flow_bytes=flow_bytes,
            arrival_rate=arrival_rate,
            seed=seed,
        )
        return nw, gen

    def test_flows_launch_and_complete(self):
        nw, gen = self.make()
        gen.start()
        nw.sim.run(until=0.02)
        gen.stop()
        nw.sim.run(until=1.0)
        assert gen.flows_started > 10
        assert len(gen.completion_times) == gen.flows_started

    def test_arrival_rate_roughly_respected(self):
        nw, gen = self.make(arrival_rate=5000.0)
        gen.start()
        nw.sim.run(until=0.02)
        # Expect ~100 arrivals in 20 ms at 5000/s; allow wide slack.
        assert 50 < gen.flows_started < 200

    def test_packets_per_flow_rounding(self):
        nw, gen = self.make(flow_bytes=1501)
        assert gen.packets_per_flow == 2

    def test_completion_times_positive_and_sane(self):
        nw, gen = self.make()
        gen.start()
        nw.sim.run(until=0.01)
        gen.stop()
        nw.sim.run(until=1.0)
        assert all(0 < t < 0.1 for t in gen.completion_times)

    def test_stop_prevents_new_launches(self):
        nw, gen = self.make()
        gen.start()
        nw.sim.run(until=0.005)
        started = gen.flows_started
        gen.stop()
        nw.sim.run(until=0.02)
        assert gen.flows_started == started

    def test_deterministic_given_seed(self):
        _, a = self.make(seed=3)
        _, b = self.make(seed=3)
        # Identical arrival processes.
        assert [a._rng.random() for _ in range(5)] == [
            b._rng.random() for _ in range(5)
        ]

    def test_on_flow_complete_callback(self):
        nw, gen = self.make()
        fcts = []
        gen.on_flow_complete = fcts.append
        gen.start()
        nw.sim.run(until=0.01)
        gen.stop()
        nw.sim.run(until=1.0)
        assert fcts == gen.completion_times

    def test_endpoints_cleaned_up(self):
        nw, gen = self.make()
        gen.start()
        nw.sim.run(until=0.01)
        gen.stop()
        nw.sim.run(until=1.0)
        assert not nw.receiver._endpoints

    @pytest.mark.parametrize("kwargs", [
        {"flow_bytes": 0},
        {"arrival_rate": 0.0},
    ])
    def test_invalid_parameters(self, kwargs):
        nw = dumbbell(1, droptailish)
        defaults = dict(flow_bytes=1500, arrival_rate=100.0)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            ShortFlowGenerator(nw.senders[0], nw.receiver, **defaults)

    def test_double_start_rejected(self):
        nw, gen = self.make()
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_censoring_counts_exposed(self):
        """Regression: flows in flight at window close used to vanish —
        ``completion_times`` shrank with no tally anywhere, silently
        biasing FCT percentiles low.  The generator must account for
        every launched flow as completed or incomplete."""
        nw, gen = self.make(arrival_rate=5000.0)
        gen.start()
        # Stop mid-window without draining: some flows are in flight.
        nw.sim.run(until=0.005)
        assert gen.flows_started > 0
        assert gen.flows_completed == len(gen.completion_times)
        assert gen.flows_incomplete == gen.flows_started - gen.flows_completed
        assert gen.flows_incomplete > 0  # the censored tail exists

    def test_censoring_clears_when_drained(self):
        nw, gen = self.make()
        gen.start()
        nw.sim.run(until=0.01)
        gen.stop()
        nw.sim.run(until=1.0)
        assert gen.flows_incomplete == 0
        assert gen.flows_completed == gen.flows_started


class TestQueueBuildupExperiment:
    def test_ecn_beats_droptail_on_fct(self):
        from repro.experiments.queue_buildup import run_protocol
        from repro.experiments.protocols import ProtocolConfig, dctcp_sim
        from repro.core.marking import NullMarker
        from repro.sim.tcp.sender import RenoSender

        droptail = ProtocolConfig(
            "DropTail-Reno", lambda: NullMarker(), RenoSender
        )
        kwargs = dict(duration=0.03, warmup=0.006, arrival_rate=1500.0)
        reno = run_protocol(droptail, **kwargs)
        dctcp = run_protocol(dctcp_sim(), **kwargs)
        assert dctcp.mean_queue < reno.mean_queue
        assert dctcp.mean_fct < reno.mean_fct
