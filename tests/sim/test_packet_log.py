"""Tests for the packet-event logger."""

import pytest

from repro.core.marking import SingleThresholdMarker
from repro.sim.packet_log import PacketLogger
from repro.sim.tcp import DctcpSender, open_flow
from repro.sim.topology import dumbbell


def run_logged(n_flows=2, max_records=None):
    nw = dumbbell(n_flows, lambda: SingleThresholdMarker.from_threshold(10))
    logger = PacketLogger(max_records=max_records)
    bottleneck_iface = nw.network.interface_between(
        nw.switch.node_id, nw.receiver.node_id
    )
    logger.attach(bottleneck_iface)
    flows = [
        open_flow(h, nw.receiver, DctcpSender, total_packets=50)
        for h in nw.senders
    ]
    for f in flows:
        f.start()
    nw.sim.run(until=1.0)
    return logger, flows


class TestPacketLogger:
    def test_records_all_bottleneck_deliveries(self):
        logger, flows = run_logged()
        # Every data packet of both flows crossed the tapped interface.
        assert logger.summary()["data"] == 100
        assert logger.summary()["acks"] == 0  # ACKs use the reverse path

    def test_timestamps_monotone(self):
        logger, _ = run_logged()
        times = [r.time for r in logger.records]
        assert times == sorted(times)

    def test_filter_by_flow(self):
        logger, flows = run_logged()
        only = logger.filter(flow_id=flows[0].flow_id)
        assert len(only) == 50
        assert all(r.flow_id == flows[0].flow_id for r in only)

    def test_marked_packets_visible(self):
        logger, _ = run_logged()
        marked = logger.filter(marked_only=True)
        assert marked  # K=10 with 2 flows marks plenty
        assert all(r.ce for r in marked)

    def test_first_time_of_first_mark(self):
        logger, _ = run_logged()
        t = logger.first_time(marked_only=True)
        assert t is not None
        assert t > 0.0
        assert t == min(r.time for r in logger.filter(marked_only=True))

    def test_max_records_cap(self):
        logger, _ = run_logged(max_records=10)
        assert len(logger.records) == 10
        assert logger.dropped_records > 0

    def test_detach_stops_logging(self):
        nw = dumbbell(1, lambda: SingleThresholdMarker.from_threshold(10))
        logger = PacketLogger()
        iface = nw.network.interface_between(
            nw.switch.node_id, nw.receiver.node_id
        )
        logger.attach(iface)
        flow = open_flow(nw.senders[0], nw.receiver, DctcpSender,
                         total_packets=5)
        flow.start()
        nw.sim.run(until=0.001)
        count = len(logger.records)
        logger.detach(iface)
        flow2 = open_flow(nw.senders[0], nw.receiver, DctcpSender,
                          total_packets=5)
        flow2.start()
        nw.sim.run(until=1.0)
        assert len(logger.records) == count

    def test_write_text_lines(self, tmp_path):
        logger, _ = run_logged()
        path = logger.write(tmp_path / "trace.txt")
        lines = path.read_text().splitlines()
        assert len(lines) == len(logger.records)
        assert "flow=" in lines[0]
        assert "DATA" in lines[0]

    def test_invalid_max_records(self):
        with pytest.raises(ValueError):
            PacketLogger(max_records=0)

    def test_record_line_flags(self):
        logger, _ = run_logged()
        marked = logger.filter(marked_only=True)[0]
        assert "C" in marked.line()
