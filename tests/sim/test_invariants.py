"""Tests for the runtime invariant watchdog.

Two halves: healthy simulations audit clean at every instant (under both
link models, with and without active faults), and deliberately injected
corruption — stolen packets, leaked pool packets, cooked counters,
disarmed RTO timers — is caught and named.  The second half is the
watchdog's reason to exist: a checker that never fires on real bugs is
just overhead.
"""

from __future__ import annotations

import pytest

from repro.core.marking import SingleThresholdMarker
from repro.sim.apps.bulk import launch_bulk_flows
from repro.sim.chaos import ChaosSchedule
from repro.sim.invariants import (
    InvariantViolation,
    InvariantWatchdog,
    audit_network,
    held_by_interface,
    invariants_enabled,
    network_held_packets,
)
from repro.sim.link import link_model
from repro.sim.packet import Packet, live_pooled_packets
from repro.sim.tcp.sender import DctcpSender
from repro.sim.topology import dumbbell


def _marker():
    return SingleThresholdMarker.from_threshold(40.0)


def _busy_dumbbell(n_flows: int = 4):
    network = dumbbell(n_flows, _marker)
    watchdog = InvariantWatchdog(network.network)  # before traffic
    flows = launch_bulk_flows(network, sender_cls=DctcpSender)
    return network, watchdog, flows


class TestHealthyRuns:
    @pytest.mark.parametrize("link", ["busy-until", "two-event"])
    def test_periodic_checks_pass_mid_run(self, link):
        with link_model(link):
            network, watchdog, _ = _busy_dumbbell()
            # Audit every 100 us: checks land mid-busy-period, where the
            # busy-until lane's deferred queue bookkeeping must still
            # balance the ledgers.
            watchdog.start(interval=100e-6)
            network.sim.run(until=0.003)
            watchdog.check()
        assert watchdog.checks_run >= 30
        assert network.sim.events_processed > 1000

    def test_audit_clean_during_active_faults(self):
        network = dumbbell(3, _marker, rtt=1e-4)
        controller = (
            ChaosSchedule(seed=4)
            .outage("switch", "client", t0=0.0005, duration=0.0005,
                    direction="a->b")
            .loss("server0", "switch", rate=0.1, direction="a->b")
            .install(network.network)
        )
        watchdog = InvariantWatchdog(network.network)
        launch_bulk_flows(network, sender_cls=DctcpSender, min_rto=1e-3)
        watchdog.start(interval=100e-6)
        network.sim.run(until=0.004)
        watchdog.check()
        # The faults really fired — conservation held *including* the
        # chaos drop counters, not because nothing happened.
        assert controller.packets_dropped > 0

    def test_custody_accounts_packets_on_the_wire(self):
        network = dumbbell(2, _marker, rtt=4e-3)  # 1 ms per hop
        launch_bulk_flows(network, sender_cls=DctcpSender)
        network.sim.run(until=2.1e-3)  # first packets still propagating
        net = network.network
        assert network_held_packets(net) > 0
        assert all(held_by_interface(i) >= 0 for i in net.all_interfaces())
        assert audit_network(net) == []


class TestInjectedCorruption:
    def run_briefly(self):
        network, watchdog, flows = _busy_dumbbell()
        network.sim.run(until=0.002)
        return network, watchdog, flows

    def test_stolen_queued_packet_is_caught(self):
        network, watchdog, _ = self.run_briefly()
        queue = network.bottleneck_queue
        assert queue.len_packets > 0, "bottleneck empty; scenario too light"
        # Steal a parked packet without telling the ledgers — the classic
        # conservation bug a refactor of the queue fast path could add.
        stolen = queue._queue.popleft()
        with pytest.raises(InvariantViolation) as excinfo:
            watchdog.check()
        message = str(excinfo.value)
        assert "byte gauge" in message
        assert "enqueued-dequeued" in message
        stolen.recycle()

    def test_pool_leak_is_caught(self):
        network, watchdog, _ = self.run_briefly()
        # A pooled packet acquired and never recycled — exactly what the
        # pre-chaos drop paths used to do under overload.
        leaked = Packet.acquire(flow_id=0, src=0, dst=1, seq=0,
                                size_bytes=1500)
        with pytest.raises(InvariantViolation, match="pool leak"):
            watchdog.check()
        leaked.recycle()
        watchdog.check()  # recycling repairs the balance

    def test_cooked_forwarding_counter_is_caught(self):
        network, watchdog, _ = self.run_briefly()
        network.switch.packets_forwarded += 1
        with pytest.raises(InvariantViolation, match="forwarded"):
            watchdog.check()

    def test_cooked_host_counter_is_caught(self):
        network, watchdog, _ = self.run_briefly()
        network.receiver.packets_received += 1
        with pytest.raises(InvariantViolation, match="packets_received"):
            watchdog.check()

    def test_negative_custody_is_caught(self):
        network, watchdog, _ = self.run_briefly()
        iface = network.network.interface_between(
            network.switch.node_id, network.receiver.node_id
        )
        iface.packets_delivered += 10_000
        with pytest.raises(InvariantViolation, match="negative custody"):
            watchdog.check()

    def test_wedged_sender_is_caught(self):
        network, watchdog, flows = self.run_briefly()
        victim = next(f.sender for f in flows if f.sender.in_flight > 0)
        # Disarm the RTO timer under outstanding data: the silent-wedge
        # state a mishandled outage would leave behind.
        victim._rto_timer = None
        with pytest.raises(InvariantViolation, match="wedged"):
            watchdog.check()

    def test_clock_regression_is_caught(self):
        network, watchdog, _ = self.run_briefly()
        watchdog._last_now = network.sim.now + 1.0
        with pytest.raises(InvariantViolation, match="clock ran backwards"):
            watchdog.check()


class TestReporting:
    def test_violation_message_lists_every_finding(self):
        exc = InvariantViolation(["first thing", "second thing"], when=0.25)
        message = str(exc)
        assert "2 invariant violation(s) at t=0.25" in message
        assert "first thing" in message and "second thing" in message
        assert exc.violations == ["first thing", "second thing"]
        assert isinstance(exc, AssertionError)

    def test_watchdog_rejects_bad_interval(self):
        network = dumbbell(1, _marker)
        watchdog = InvariantWatchdog(network.network)
        with pytest.raises(ValueError):
            watchdog.start(interval=0.0)

    def test_env_switch_read(self, monkeypatch):
        monkeypatch.delenv("REPRO_INVARIANTS", raising=False)
        assert not invariants_enabled()
        monkeypatch.setenv("REPRO_INVARIANTS", "1")
        assert invariants_enabled()
