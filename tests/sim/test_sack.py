"""Tests for SACK-based loss recovery (sender scoreboard + receiver blocks)."""

import pytest

from repro.sim.queues import FifoQueue
from repro.sim.tcp.flow import open_flow
from repro.sim.tcp.sender import DctcpSender
from repro.sim.topology import Network


class LossyQueue(FifoQueue):
    """Drops the first transmission of each listed data seq."""

    def __init__(self, *args, drop_seqs=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.drop_seqs = set(drop_seqs)

    def enqueue(self, packet):
        if not packet.is_ack and packet.seq in self.drop_seqs:
            self.drop_seqs.remove(packet.seq)
            self.stats.dropped += 1
            return False
        return super().enqueue(packet)


def make_pair(drop_seqs=()):
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    net.connect(a, b, 1e9, 25e-6, LossyQueue(10e6, drop_seqs=drop_seqs),
                FifoQueue(10e6))
    net.finalize_routes()
    return net, a, b


class TestSackNegotiation:
    def test_receiver_enabled_with_sender(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=10, use_sack=True)
        assert flow.sender.use_sack
        assert flow.receiver.sack_enabled

    def test_receiver_disabled_by_default(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=10)
        assert not flow.sender.use_sack
        assert not flow.receiver.sack_enabled


class TestSackBlocks:
    def test_acks_carry_out_of_order_blocks(self):
        net, a, b = make_pair(drop_seqs={5})
        acks_with_blocks = []

        flow = open_flow(a, b, DctcpSender, total_packets=20, use_sack=True,
                         initial_cwnd=20)
        original = flow.sender.on_packet

        def spy(packet):
            if packet.is_ack and packet.sack_blocks:
                acks_with_blocks.append(packet.sack_blocks)
            original(packet)

        a._endpoints[flow.flow_id] = type(
            "Spy", (), {"on_packet": staticmethod(spy)}
        )()
        flow.start()
        net.sim.run(until=1.0)
        assert acks_with_blocks
        # The first blocks start right after the hole at 5.
        assert acks_with_blocks[0][0][0] == 6

    def test_no_blocks_without_losses(self):
        net, a, b = make_pair()
        flow = open_flow(a, b, DctcpSender, total_packets=20, use_sack=True)
        flow.start()
        net.sim.run(until=1.0)
        assert flow.completed


class TestSackRecovery:
    def test_multiple_holes_recovered_in_one_rtt_wave(self):
        """Three scattered losses: SACK fills all holes without waiting
        one RTT per hole (NewReno) and without any timeout."""
        net, a, b = make_pair(drop_seqs={10, 14, 18})
        flow = open_flow(a, b, DctcpSender, total_packets=60, use_sack=True,
                         initial_cwnd=30)
        flow.start()
        net.sim.run(until=1.0)
        assert flow.completed
        assert flow.sender.timeouts == 0
        # Exactly the three lost packets were retransmitted.
        assert flow.sender.retransmits == 3

    def test_sack_faster_than_newreno_for_burst_loss(self):
        def completion_time(use_sack):
            net, a, b = make_pair(drop_seqs={20, 23, 26, 29, 32})
            done = []
            flow = open_flow(
                a, b, DctcpSender, total_packets=200, use_sack=use_sack,
                on_complete=done.append, initial_cwnd=40,
            )
            flow.start()
            net.sim.run(until=5.0)
            assert flow.completed
            return done[0], flow.sender.timeouts

    # NewReno needs ~one RTT per hole; SACK one wave for all five.
        sack_time, sack_to = completion_time(True)
        newreno_time, _ = completion_time(False)
        assert sack_to == 0
        assert sack_time <= newreno_time

    def test_pipe_excludes_sacked_packets(self):
        net, a, b = make_pair(drop_seqs={0})
        flow = open_flow(a, b, DctcpSender, total_packets=30, use_sack=True,
                         initial_cwnd=10)
        flow.start()
        # Let the first window and its dupacks flow.
        net.sim.run(until=0.002)
        sender = flow.sender
        if len(sender._sacked):
            assert sender.pipe == sender.in_flight - len(sender._sacked)
        net.sim.run(until=2.0)
        assert flow.completed

    def test_scoreboard_cleared_on_rto(self):
        # Tail loss: no dupacks possible, RTO fires, scoreboard resets.
        net, a, b = make_pair(drop_seqs={29})
        flow = open_flow(a, b, DctcpSender, total_packets=30, use_sack=True,
                         min_rto=0.05, initial_rto=0.1)
        flow.start()
        net.sim.run(until=5.0)
        assert flow.completed
        assert not flow.sender._sacked

    def test_sack_under_heavy_random_loss(self):
        losses = set(range(5, 100, 7))
        net, a, b = make_pair(drop_seqs=losses)
        flow = open_flow(a, b, DctcpSender, total_packets=150, use_sack=True,
                         min_rto=0.05, initial_rto=0.1, initial_cwnd=20)
        flow.start()
        net.sim.run(until=30.0)
        assert flow.completed
        assert flow.receiver.rcv_next == 150
