"""Unit tests for the discrete-event kernel.

Every test in this module runs twice — once under the calendar-queue
kernel and once under the binary-heap oracle (the autouse ``kernel``
fixture below) — so the two schedulers cannot drift apart on any of the
contracts asserted here.
"""

import math

import pytest

from repro.sim.engine import (
    EVENT_QUEUES,
    Simulator,
    event_queue,
    handle_pool_limit,
    handle_pool_size,
    set_handle_pool_limit,
)


@pytest.fixture(autouse=True, params=EVENT_QUEUES)
def kernel(request):
    """Run the whole module under each event-queue implementation."""
    with event_queue(request.param):
        yield request.param


def _sole_entry(sim):
    """The single scheduler entry of a one-event simulator (any kernel)."""
    if sim.event_queue_impl == "heap":
        (entry,) = sim._heap
    else:
        (entry,) = [e for bucket in sim._buckets.values() for e in bucket]
    return entry


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_non_finite_delay_rejected(self):
        """Regression: NaN slipped past the `delay < 0` guard (NaN
        compares false against everything) and corrupted the heap."""
        sim = Simulator()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                sim.schedule(bad, lambda: None)

    def test_non_finite_absolute_time_rejected(self):
        sim = Simulator()
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.schedule_at(bad, lambda: None)

    def test_events_scheduled_counts_every_push(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.events_scheduled == 2  # cancellation does not un-count
        sim.run()
        assert sim.events_scheduled == 2

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        hits = []

        def recurring(n):
            hits.append(sim.now)
            if n > 1:
                sim.schedule(1.0, recurring, n - 1)

        sim.schedule(1.0, recurring, 3)
        sim.run()
        assert hits == [1.0, 2.0, 3.0]


class TestRunLimits:
    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run(until=5.0)
        assert fired == [1]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        sim.run(max_events=50)
        assert sim.events_processed == 50

    def test_budget_exhaustion_does_not_fast_forward_clock(self):
        """Regression: run(until=..., max_events=...) used to jump the
        clock to `until` even with events still pending before it, so
        the next run() moved time backwards."""
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            sim.schedule(t, fired.append, t)
        sim.run(until=10.0, max_events=2)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0  # not 10.0: events at 3..5 still pending

    def test_clock_monotone_across_budgeted_runs(self):
        sim = Simulator()
        times = []
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            sim.schedule(t, lambda: times.append(sim.now))
        sim.run(until=10.0, max_events=2)
        sim.run(until=10.0)
        assert times == sorted(times) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert sim.now == 10.0  # heap drained -> fast-forward is fine

    def test_budget_exhaustion_with_only_later_events_fast_forwards(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(20.0, fired.append, 2)
        sim.run(until=10.0, max_events=1)
        # The only remaining event lies beyond `until`, so advancing
        # the clock cannot reorder anything.
        assert fired == [1]
        assert sim.now == 10.0

    def test_cancelled_head_does_not_block_fast_forward(self):
        sim = Simulator()
        handle = sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.run(until=10.0, max_events=1)
        # Only a cancelled entry remained before `until`.
        assert sim.now == 10.0

    def test_stop_ends_run_leaving_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, lambda: (fired.append(2), sim.stop()))
        sim.schedule(3.0, fired.append, 3)
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 2.0
        assert sim.pending_events == 1
        sim.run()  # a fresh run picks the remainder back up
        assert fired == [1, 2, 3]

    def test_stop_prevents_fast_forward_to_until(self):
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        sim.schedule(20.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 1.0  # stopped, not advanced to until

    def test_next_pending_time_prunes_cancelled_heads(self):
        sim = Simulator()
        cancelled = [sim.schedule(t, lambda: None) for t in (1.0, 2.0, 3.0)]
        live = sim.schedule(4.0, lambda: None)
        for handle in cancelled:
            handle.cancel()
        assert sim.pending_events == 4
        assert sim._next_pending_time() == 4.0
        # The cancelled entries are gone from the scheduler, the live
        # one stays.
        assert sim.pending_events == 1
        assert _sole_entry(sim)[2] is live

    def test_next_pending_time_empty_after_pruning_everything(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        assert sim._next_pending_time() is None
        assert sim.pending_events == 0

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        sim.run()
        handle.cancel()
        assert fired == [1]

    def test_cancelled_events_not_counted_processed(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_handle_repr_shows_state(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert "pending" in repr(handle)
        handle.cancel()
        assert "cancelled" in repr(handle)


class TestReset:
    def test_reset_clears_everything(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(2.0, lambda: None)
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_processed == 0

    def test_reset_rewinds_tie_break_sequence(self):
        """After reset the first scheduled event gets sequence 0 again,
        so in-process replays break timestamp ties exactly like a fresh
        process (the replay-determinism contract)."""
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        sim.schedule(1.0, lambda: None)
        assert _sole_entry(sim)[1] == 0


class TestHandlePool:
    """The EventHandle free list must be invisible to correctness."""

    def test_unretained_fired_handles_are_recycled(self):
        try:
            set_handle_pool_limit(0)
            set_handle_pool_limit(4096)  # drained, pooling back on
            sim = Simulator()
            for t in (1.0, 2.0, 3.0):
                sim.schedule(t, lambda: None)  # handles not retained
            sim.run()
            assert handle_pool_size() == 3
        finally:
            set_handle_pool_limit(4096)

    def test_scheduling_reuses_pooled_handles(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle_pool_size() > 0
        before = handle_pool_size()
        sim.schedule(2.0, lambda: None)
        assert handle_pool_size() == before - 1

    def test_retained_handle_is_never_recycled(self):
        """A handle the caller kept must not come back as a new event."""
        sim = Simulator()
        set_handle_pool_limit(0)  # drain the pool...
        limit_restored = False
        try:
            set_handle_pool_limit(4096)  # ...then re-enable, pool empty
            limit_restored = True
            retained = sim.schedule(1.0, lambda: None)
            sim.run()
            fresh = sim.schedule(2.0, lambda: None)
            assert fresh is not retained
            fired = []
            fresh.callback = fired.append
            fresh.args = (1,)
            retained.cancel()  # late cancel must not touch `fresh`
            assert not fresh.cancelled
            sim.run()
            assert fired == [1]
        finally:
            if not limit_restored:
                set_handle_pool_limit(4096)

    def test_cancel_after_fire_noop_with_pool_reuse_pressure(self):
        sim = Simulator()
        fired = []
        retained = sim.schedule(1.0, fired.append, 1)
        sim.run()
        # Churn the pool hard; none of these may alias `retained`.
        for t in range(2, 50):
            sim.schedule(float(t), fired.append, t)
        retained.cancel()
        sim.run()
        assert fired == list(range(1, 50))

    def test_cancelled_unretained_handles_are_recycled(self):
        try:
            set_handle_pool_limit(0)
            set_handle_pool_limit(4096)  # drained, pooling back on
            sim = Simulator()
            handle = sim.schedule(1.0, lambda: None)
            handle.cancel()
            del handle
            sim.run()
            assert handle_pool_size() == 1  # popped entry went to pool
        finally:
            set_handle_pool_limit(4096)

    def test_pool_can_be_disabled(self):
        try:
            set_handle_pool_limit(0)
            assert handle_pool_size() == 0
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run()
            assert handle_pool_size() == 0
        finally:
            set_handle_pool_limit(4096)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            set_handle_pool_limit(-1)


class TestPost:
    """Fire-and-forget events: same ordering, no handle."""

    def test_post_returns_nothing(self):
        sim = Simulator()
        assert sim.post(1.0, lambda: None) is None
        assert sim.post_at(2.0, lambda: None) is None

    def test_posted_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.post(3.0, order.append, "c")
        sim.post(1.0, order.append, "a")
        sim.post_at(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_post_and_schedule_interleave_by_scheduling_order(self):
        """post/schedule share one sequence counter, so a tied timestamp
        fires in call order regardless of which API scheduled it."""
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "s1")
        sim.post(1.0, order.append, "p1")
        sim.schedule(1.0, order.append, "s2")
        sim.post_at(1.0, order.append, "p2")
        sim.run()
        assert order == ["s1", "p1", "s2", "p2"]

    def test_post_counts_in_events_scheduled_and_processed(self):
        sim = Simulator()
        sim.post(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.events_scheduled == 2
        sim.run()
        assert sim.events_processed == 2

    def test_post_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().post(-1.0, lambda: None)

    def test_post_non_finite_rejected(self):
        sim = Simulator()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                sim.post(bad, lambda: None)
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                sim.post_at(bad, lambda: None)

    def test_post_at_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.post_at(1.0, lambda: None)

    def test_posted_events_respect_until_and_stop(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, fired.append, 1)
        sim.post(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.post(0.5, lambda: sim.stop())
        sim.run()
        assert fired == [1]
        assert sim.now == 5.5
        sim.run()
        assert fired == [1, 2]

    def test_posted_callbacks_can_post_more(self):
        sim = Simulator()
        hits = []

        def recurring(n):
            hits.append(sim.now)
            if n > 1:
                sim.post(1.0, recurring, n - 1)

        sim.post(1.0, recurring, 3)
        sim.run()
        assert hits == [1.0, 2.0, 3.0]


class TestCalendarQueue:
    """Calendar-specific mechanics (explicit kernel, fixture-independent)."""

    def test_far_future_outlier_forces_widening_and_keeps_order(self):
        """A sparse tail of near-empty buckets trips the occupancy
        resize; ordering must survive the rebucketing."""
        sim = Simulator(event_queue="calendar")
        fired = []
        # Dense cluster now, sparse far-future spray: the drain of the
        # sparse region observes occupancy ~1 and widens the calendar.
        for i in range(200):
            sim.schedule(1e-7 * i, fired.append, ("dense", i))
        for i in range(200):
            sim.schedule(0.5 + 7.3 * i, fired.append, ("sparse", i))
        start_width = sim._width
        sim.run()
        assert sim._width > start_width  # widened at least once
        assert fired == [("dense", i) for i in range(200)] + [
            ("sparse", i) for i in range(200)
        ]

    def test_schedule_into_bucket_being_drained_fires_in_order(self):
        """A callback scheduling back into the current bucket (same day)
        must be merged into the in-progress drain, not postponed."""
        sim = Simulator(event_queue="calendar")
        width = sim._width
        fired = []

        def first():
            fired.append("first")
            # Lands in the same bucket, after the cursor.
            sim.schedule(width * 0.4, fired.append, "injected")

        sim.schedule(width * 0.1, first)
        sim.schedule(width * 0.9, fired.append, "last")
        sim.run()
        assert fired == ["first", "injected", "last"]

    def test_same_timestamp_flood_does_not_resize_to_zero_progress(self):
        """Thousands of events on one instant pile into one bucket; the
        drain must complete and the width must stay positive."""
        sim = Simulator(event_queue="calendar")
        fired = []
        for i in range(5000):
            sim.schedule_at(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(5000))
        assert sim._width > 0

    def test_reset_from_inside_callback_drops_pending(self):
        sim = Simulator(event_queue="calendar")
        fired = []

        def boom():
            fired.append("boom")
            sim.reset()

        sim.schedule(1.0, boom)
        sim.schedule(2.0, fired.append, "never")
        sim.run()
        assert fired == ["boom"]
        assert sim.pending_events == 0
        assert sim.now == 0.0

    def test_width_rewinds_on_reset(self):
        sim = Simulator(event_queue="calendar")
        for i in range(200):
            sim.schedule(0.5 + 7.3 * i, lambda: None)
        sim.run()
        assert sim._width != 1e-6
        sim.reset()
        assert sim._width == 1e-6


class TestKernelSelection:
    def test_unknown_event_queue_rejected(self):
        with pytest.raises(ValueError):
            Simulator(event_queue="splay-tree")

    def test_explicit_kernel_overrides_default(self):
        with event_queue("heap"):
            assert Simulator().event_queue_impl == "heap"
            assert Simulator(event_queue="calendar").event_queue_impl == (
                "calendar"
            )

    def test_env_switch_context_manager_restores(self):
        from repro.sim.engine import default_event_queue

        before = default_event_queue()
        with event_queue("heap"):
            assert default_event_queue() == "heap"
        assert default_event_queue() == before


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def tick(n):
                trace.append((sim.now, n))
                if n < 20:
                    sim.schedule(0.1 * (n % 3 + 1), tick, n + 1)

            sim.schedule(0.0, tick, 0)
            sim.run()
            return trace

        assert run_once() == run_once()
