"""Unit tests for the linearised plant (Eq. 13-18)."""

import numpy as np
import pytest

from repro.core.parameters import paper_network
from repro.core.transfer_function import (
    dc_gain,
    open_loop,
    p_alpha,
    p_dctcp,
    p_queue,
    plant,
    plant_poles,
    plant_rational_coefficients,
    plant_zero,
)


@pytest.fixture
def net():
    return paper_network(30)


class TestBlocks:
    def test_p_alpha_is_unity_dc_first_order_lag(self, net):
        assert complex(p_alpha(0.0, net)) == pytest.approx(1.0 + 0j)
        pole = net.g / net.rtt
        # Half-power at the pole frequency.
        assert abs(complex(p_alpha(1j * pole, net))) == pytest.approx(
            1.0 / np.sqrt(2.0)
        )

    def test_p_queue_dc_gain(self, net):
        # N/R0 / (1/R0) = N.
        assert complex(p_queue(0.0, net)) == pytest.approx(net.n_flows + 0j)

    def test_p_dctcp_negative_dc_gain(self, net):
        # More marking -> smaller window: strictly negative real gain.
        value = complex(p_dctcp(0.0, net))
        assert value.real < 0.0
        assert value.imag == pytest.approx(0.0)

    def test_p_dctcp_matches_eq15(self, net):
        s = 1j * 3000.0
        g_over_r = net.g / net.rtt
        gain = np.sqrt(net.capacity / (2 * net.n_flows * net.rtt))
        expected = (
            -gain
            * (1.0 + (s + g_over_r) / g_over_r)
            / (s + net.n_flows / (net.rtt**2 * net.capacity))
        )
        assert complex(p_dctcp(s, net)) == pytest.approx(expected)


class TestPlant:
    def test_plant_is_minus_product_of_blocks(self, net):
        s = 1j * 5000.0
        expected = -complex(p_alpha(s, net)) * complex(
            p_dctcp(s, net)
        ) * complex(p_queue(s, net))
        assert complex(plant(s, net)) == pytest.approx(expected)

    def test_dc_gain_closed_form(self, net):
        assert complex(plant(0.0, net)).real == pytest.approx(dc_gain(net))

    def test_positive_dc_gain(self, net):
        assert dc_gain(net) > 0.0

    def test_poles_match_eq17_denominator(self, net):
        p1, p2, p3 = plant_poles(net)
        assert p1 == pytest.approx(net.g / net.rtt)
        assert p2 == pytest.approx(net.n_flows / (net.rtt**2 * net.capacity))
        assert p3 == pytest.approx(1.0 / net.rtt)

    def test_all_poles_stable(self, net):
        assert all(p > 0 for p in plant_poles(net))

    def test_zero_matches_eq17_numerator(self, net):
        assert plant_zero(net) == pytest.approx(2.0 * net.g / net.rtt)

    def test_rational_form_agrees_with_direct_evaluation(self, net):
        num, den = plant_rational_coefficients(net)
        for w in (100.0, 5e3, 1e5):
            s = 1j * w
            rational = np.polyval(num, s) / np.polyval(den, s)
            assert rational == pytest.approx(complex(plant(s, net)), rel=1e-9)

    def test_vectorized_evaluation(self, net):
        w = np.array([1e2, 1e3, 1e4])
        values = plant(1j * w, net)
        assert values.shape == (3,)
        assert complex(values[1]) == pytest.approx(complex(plant(1j * 1e3, net)))


class TestOpenLoop:
    def test_delay_factor(self, net):
        w = 5000.0
        expected = complex(plant(1j * w, net)) * np.exp(-1j * w * net.rtt)
        assert complex(open_loop(w, net)) == pytest.approx(expected)

    def test_magnitude_unchanged_by_delay(self, net):
        w = np.geomspace(1e2, 1e5, 50)
        assert np.allclose(np.abs(open_loop(w, net)), np.abs(plant(1j * w, net)))

    def test_phase_decreases_monotonically_at_high_frequency(self, net):
        # The e^{-jwR0} delay dominates: phase winds down forever.
        w = np.geomspace(1e4, 1e7, 2000)
        phase = np.unwrap(np.angle(open_loop(w, net)))
        assert phase[-1] < phase[0] - 4 * np.pi

    def test_gain_rolls_off(self, net):
        assert abs(complex(open_loop(1e7, net))) < abs(
            complex(open_loop(1e3, net))
        )

    def test_locus_shifts_with_n(self):
        """More flows -> deeper real-axis excursion (up to N ~ 55): the
        paper's 'K0 G(jw) shifts to the left as N increases'."""
        def deepest_excursion(n):
            net = paper_network(n)
            w = np.geomspace(1e3, 1e6, 20000)
            vals = open_loop(w, net) / 40.0
            phase = np.unwrap(np.angle(vals))
            idx = int(np.argmin(np.abs(phase + np.pi)))
            return abs(vals[idx])

        d10, d30, d55 = (deepest_excursion(n) for n in (10, 30, 55))
        assert d10 < d30 < d55
