"""Tests for the classical gain/phase/delay margins."""

import math

import pytest

from repro.core.margins import classical_margins, worst_case_amplitude
from repro.core.parameters import (
    DoubleThresholdParams,
    SingleThresholdParams,
    paper_network,
)
from repro.core.stability import calibrate_gain_scale

DC = SingleThresholdParams(k=40.0)
DT = DoubleThresholdParams(k1=30.0, k2=50.0)


@pytest.fixture(scope="module")
def scale():
    return calibrate_gain_scale(paper_network(10), DC, onset_flows=60)


class TestWorstCaseAmplitude:
    def test_relay_closed_form(self):
        assert worst_case_amplitude(DC) == pytest.approx(40.0 * math.sqrt(2))

    def test_hysteresis_numeric(self):
        x = worst_case_amplitude(DT)
        assert DT.k2 < x < 3 * DT.k2

    def test_degenerate_hysteresis_matches_relay(self):
        x = worst_case_amplitude(DoubleThresholdParams(k1=40.0, k2=40.0))
        assert x == pytest.approx(40.0 * math.sqrt(2), rel=0.01)


class TestMargins:
    def test_stable_at_small_n(self, scale):
        margins = classical_margins(
            paper_network(10), DC, loop_gain_scale=scale
        )
        assert margins.stable
        assert margins.gain_margin > 1.2
        assert margins.phase_margin_deg > 10.0
        assert margins.delay_margin > 0.0

    def test_gain_margin_near_one_at_calibration(self, scale):
        """The calibration makes N=60 the tangency: GM ~ 1."""
        margins = classical_margins(
            paper_network(60), DC, loop_gain_scale=scale
        )
        assert margins.gain_margin == pytest.approx(1.0, abs=0.02)

    def test_dt_margins_dominate_dc(self, scale):
        """Theorem 2, margin edition: DT wins on every margin."""
        for n in (10, 40, 60, 100):
            net = paper_network(n)
            dc = classical_margins(net, DC, loop_gain_scale=scale)
            dt = classical_margins(net, DT, loop_gain_scale=scale)
            assert dt.gain_margin > dc.gain_margin
            if dc.phase_margin_deg is not None and dt.phase_margin_deg is not None:
                assert dt.phase_margin_deg >= dc.phase_margin_deg - 1e-6

    def test_gain_margin_scales_inversely_with_loop_gain(self):
        net = paper_network(40)
        small = classical_margins(net, DC, loop_gain_scale=1.0)
        large = classical_margins(net, DC, loop_gain_scale=2.0)
        assert small.gain_margin == pytest.approx(
            2.0 * large.gain_margin, rel=1e-3
        )

    def test_delay_margin_fraction_of_rtt_near_onset(self, scale):
        """Close to the oscillation onset the loop tolerates only a small
        extra delay - the DF story told in time units."""
        margins = classical_margins(
            paper_network(40), DC, loop_gain_scale=scale
        )
        assert margins.delay_margin is not None
        assert margins.delay_margin < paper_network(40).rtt

    def test_phase_margin_normalised(self, scale):
        for n in (10, 40, 60, 100):
            margins = classical_margins(
                paper_network(n), DC, loop_gain_scale=scale
            )
            if margins.phase_margin_deg is not None:
                assert -180.0 < margins.phase_margin_deg <= 180.0

    def test_explicit_amplitude_respected(self):
        net = paper_network(20)
        margins = classical_margins(net, DC, amplitude=100.0)
        assert margins.amplitude == 100.0
        # Larger amplitude -> smaller DF gain -> bigger gain margin.
        worst = classical_margins(net, DC)
        assert margins.gain_margin > worst.gain_margin

    def test_gain_margin_db(self):
        margins = classical_margins(paper_network(10), DC)
        assert margins.gain_margin_db == pytest.approx(
            20 * math.log10(margins.gain_margin)
        )
