"""Unit tests for the describing functions (Eq. 22-23, 27-28)."""

import math

import pytest

from repro.core.describing_function import (
    df_double_threshold,
    df_phase_degrees,
    df_single_threshold,
    max_neg_inv_relative_df_single,
    max_real_neg_inv_relative_df_double,
    neg_inv_relative_df_double,
    neg_inv_relative_df_single,
    numeric_df_double,
    numeric_df_from_marker,
    numeric_df_from_waveform,
    numeric_df_single,
    relative_df_double,
    relative_df_single,
)
from repro.core.marking import DoubleThresholdMarker, SingleThresholdMarker

K, K1, K2 = 40.0, 30.0, 50.0


class TestSingleThresholdDf:
    def test_closed_form_matches_eq22(self):
        x = 60.0
        expected = (2.0 / (math.pi * x)) * math.sqrt(1.0 - (K / x) ** 2)
        assert df_single_threshold(x, K) == pytest.approx(expected)

    def test_purely_real(self):
        for ratio in (1.1, 2.0, 10.0):
            assert df_single_threshold(ratio * K, K).imag == 0.0

    def test_zero_at_amplitude_equal_threshold(self):
        assert df_single_threshold(K, K) == 0.0

    def test_vanishes_at_large_amplitude(self):
        assert abs(df_single_threshold(1e6 * K, K)) < 1e-6

    def test_domain_restriction(self):
        with pytest.raises(ValueError):
            df_single_threshold(K - 1.0, K)

    def test_relative_df_is_k_times_df(self):
        x = 70.0
        assert relative_df_single(x, K) == pytest.approx(
            K * df_single_threshold(x, K)
        )

    def test_relative_df_max_is_one_over_pi(self):
        # N0dc attains 1/pi at X = K*sqrt(2).
        assert relative_df_single(K * math.sqrt(2.0), K).real == pytest.approx(
            1.0 / math.pi
        )

    def test_numeric_matches_closed_form(self):
        for ratio in (1.05, 1.5, 3.0):
            x = ratio * K
            assert numeric_df_single(x, K) == pytest.approx(
                df_single_threshold(x, K), abs=1e-4
            )


class TestDoubleThresholdDf:
    def test_closed_form_matches_eq27(self):
        x = 80.0
        b1 = (
            math.sqrt(1 - (K1 / x) ** 2) + math.sqrt(1 - (K2 / x) ** 2)
        ) / math.pi
        a1 = (K2 - K1) / (math.pi * x)
        expected = complex(b1 / x, a1 / x)
        assert df_double_threshold(x, K1, K2) == pytest.approx(expected)

    def test_positive_imaginary_part_everywhere(self):
        """The phase lead that makes DT-DCTCP stabilising (Section V-D)."""
        for ratio in (1.01, 1.5, 2.0, 10.0):
            assert df_double_threshold(ratio * K2, K1, K2).imag > 0.0

    def test_reduces_to_single_threshold_when_gap_zero(self):
        x = 90.0
        dt = df_double_threshold(x, K, K)
        dc = df_single_threshold(x, K)
        assert dt == pytest.approx(dc)

    def test_domain_restriction_uses_k2(self):
        with pytest.raises(ValueError):
            df_double_threshold(K2 - 1.0, K1, K2)

    def test_relative_df_uses_k2(self):
        x = 80.0
        assert relative_df_double(x, K1, K2) == pytest.approx(
            K2 * df_double_threshold(x, K1, K2)
        )

    def test_numeric_matches_closed_form(self):
        for ratio in (1.05, 1.5, 3.0):
            x = ratio * K2
            assert numeric_df_double(x, K1, K2) == pytest.approx(
                df_double_threshold(x, K1, K2), abs=1e-4
            )

    def test_phase_lead_in_degrees(self):
        assert 0.0 < df_phase_degrees(df_double_threshold(80.0, K1, K2)) < 90.0


class TestNegInvRelativeDf:
    def test_single_on_negative_real_axis(self):
        for ratio in (1.1, 2.0, 5.0):
            v = neg_inv_relative_df_single(ratio * K, K)
            assert v.real < 0.0
            assert v.imag == pytest.approx(0.0)

    def test_single_maximum_is_minus_pi(self):
        assert max_neg_inv_relative_df_single(K) == pytest.approx(-math.pi)
        # ... attained at X = K*sqrt(2):
        at_peak = neg_inv_relative_df_single(K * math.sqrt(2.0), K)
        assert at_peak.real == pytest.approx(-math.pi)
        # ... and it is a maximum:
        assert neg_inv_relative_df_single(1.1 * K, K).real < -math.pi
        assert neg_inv_relative_df_single(5.0 * K, K).real < -math.pi

    def test_single_undefined_at_domain_edge(self):
        with pytest.raises(ValueError):
            neg_inv_relative_df_single(K, K)

    def test_double_has_positive_imaginary_part(self):
        """-1/N0dt sits *above* the real axis (Figure 7b)."""
        for ratio in (1.01, 1.5, 4.0):
            v = neg_inv_relative_df_double(ratio * K2, K1, K2)
            assert v.real < 0.0
            assert v.imag > 0.0

    def test_double_rightmost_point(self):
        best = max_real_neg_inv_relative_df_double(K1, K2)
        assert best.real < 0.0
        assert best.imag > 0.0
        # Rightmost point of DT lies to the right of DCTCP's -pi: the
        # geometry alone does not decide stability - position off the
        # axis does (Section V-D).
        assert best.real > -math.pi

    def test_max_single_requires_positive_k(self):
        with pytest.raises(ValueError):
            max_neg_inv_relative_df_single(0.0)


class TestNumericDf:
    def test_from_waveform_pure_fundamental(self):
        # y = sin(phase) has DF exactly 1/X... with X = 2: N = 0.5.
        value = numeric_df_from_waveform(math.sin, amplitude=2.0)
        assert value == pytest.approx(0.5 + 0j, abs=1e-6)

    def test_from_waveform_cosine_gives_imaginary(self):
        value = numeric_df_from_waveform(math.cos, amplitude=1.0)
        assert value == pytest.approx(1j, abs=1e-6)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            numeric_df_from_waveform(math.sin, amplitude=0.0)
        with pytest.raises(ValueError):
            numeric_df_from_waveform(math.sin, amplitude=1.0, n_samples=4)
        with pytest.raises(ValueError):
            numeric_df_from_marker(
                SingleThresholdMarker.from_threshold(1.0), amplitude=0.0
            )

    def test_live_single_marker_matches_closed_form(self):
        marker = SingleThresholdMarker.from_threshold(K)
        x = 70.0
        assert numeric_df_from_marker(marker, x) == pytest.approx(
            df_single_threshold(x, K), abs=1e-3
        )

    def test_live_double_marker_matches_closed_form(self):
        """The causal hysteresis state machine reproduces Figure 8 exactly."""
        marker = DoubleThresholdMarker.from_thresholds(K1, K2)
        for ratio in (1.1, 1.6, 2.5):
            x = ratio * K2
            assert numeric_df_from_marker(marker, x) == pytest.approx(
                df_double_threshold(x, K1, K2), abs=1e-3
            )

    def test_live_marker_with_offset_bias(self):
        # Oscillation around the setpoint 40 with thresholds at absolute
        # levels: equivalent to zero-offset thresholds shifted by 40.
        marker = SingleThresholdMarker.from_threshold(K)
        biased = numeric_df_from_marker(marker, 30.0, offset=40.0)
        equivalent = numeric_df_from_marker(
            SingleThresholdMarker.from_threshold(0.0000001), 30.0
        )
        assert biased == pytest.approx(equivalent, abs=1e-3)
