"""Unit tests for the Nyquist-plane machinery."""

import math

import numpy as np
import pytest

from repro.core.nyquist import (
    default_amplitude_grid,
    default_frequency_grid,
    df_locus,
    find_intersections,
    min_curve_distance,
    phase_crossovers,
    plant_locus,
    principal_phase_crossover,
    winding_number,
)
from repro.core.parameters import (
    DoubleThresholdParams,
    SingleThresholdParams,
    paper_network,
)


@pytest.fixture
def net():
    return paper_network(60)


@pytest.fixture
def dc():
    return SingleThresholdParams(k=40.0)


@pytest.fixture
def dt():
    return DoubleThresholdParams(k1=30.0, k2=50.0)


class TestGrids:
    def test_frequency_grid_brackets_one_over_rtt(self, net):
        w = default_frequency_grid(net)
        assert w[0] < 1.0 / net.rtt < w[-1]
        assert np.all(np.diff(w) > 0)

    def test_amplitude_grid_starts_at_domain_edge(self, dc, dt):
        x_dc = default_amplitude_grid(dc)
        assert x_dc[0] > dc.k
        x_dt = default_amplitude_grid(dt)
        assert x_dt[0] > dt.k2


class TestLoci:
    def test_plant_locus_scales_with_gain(self, net, dc):
        _, base = plant_locus(net, dc)
        _, scaled = plant_locus(net, dc, loop_gain_scale=2.0)
        assert np.allclose(scaled, 2.0 * base)

    def test_plant_locus_uses_characteristic_gain(self, net, dc, dt):
        w = np.array([5000.0])
        _, v_dc = plant_locus(net, dc, w=w)
        _, v_dt = plant_locus(net, dt, w=w)
        # Same G(jw); only K0 differs: 1/40 vs 1/50.
        assert v_dc[0] / v_dt[0] == pytest.approx(50.0 / 40.0)

    def test_df_locus_single_on_real_axis(self, dc):
        _, values = df_locus(dc)
        assert np.all(values.real < 0.0)
        assert np.allclose(values.imag, 0.0)
        assert values.real.max() <= -math.pi + 1e-6

    def test_df_locus_double_above_real_axis(self, dt):
        _, values = df_locus(dt)
        assert np.all(values.real < 0.0)
        assert np.all(values.imag > 0.0)


class TestPhaseCrossovers:
    def test_finds_at_least_one_crossing(self, net, dc):
        crossings = phase_crossovers(net, dc)
        assert crossings
        for c in crossings:
            assert c.value.real < 0.0
            assert abs(c.value.imag) < 1e-6

    def test_principal_is_largest_magnitude(self, net, dc):
        crossings = phase_crossovers(net, dc)
        principal = principal_phase_crossover(net, dc)
        assert principal.magnitude == pytest.approx(
            max(c.magnitude for c in crossings)
        )

    def test_paper_parameters_crossover_magnitude(self, net, dc):
        """Literal Eq. 13-18 at N=60: |K0 G| ~ 0.58 at the crossover -
        the number that motivates the documented gain calibration."""
        principal = principal_phase_crossover(net, dc)
        assert principal.magnitude == pytest.approx(0.58, abs=0.02)

    def test_scaling_scales_crossover(self, net, dc):
        base = principal_phase_crossover(net, dc)
        scaled = principal_phase_crossover(net, dc, loop_gain_scale=3.0)
        assert scaled.magnitude == pytest.approx(3.0 * base.magnitude, rel=1e-6)
        assert scaled.frequency == pytest.approx(base.frequency, rel=1e-6)


class TestMinCurveDistance:
    def test_exact_for_known_points(self):
        a = np.array([0 + 0j, 1 + 1j])
        b = np.array([5 + 5j, 1 + 2j])
        dist, i, j = min_curve_distance(a, b)
        assert dist == pytest.approx(1.0)
        assert (i, j) == (1, 1)

    def test_zero_for_shared_point(self):
        a = np.array([1 + 1j, 2 + 2j])
        b = np.array([3 + 3j, 2 + 2j])
        assert min_curve_distance(a, b)[0] == 0.0

    def test_rejects_empty_curves(self):
        with pytest.raises(ValueError):
            min_curve_distance(np.array([]), np.array([1 + 1j]))

    def test_blockwise_matches_bruteforce(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=2000) + 1j * rng.normal(size=2000)
        b = rng.normal(size=777) + 1j * rng.normal(size=777)
        dist, _, _ = min_curve_distance(a, b)
        assert dist == pytest.approx(np.abs(a[:, None] - b[None, :]).min())


class TestIntersections:
    def test_none_at_literal_paper_gain(self, net, dc):
        assert find_intersections(net, dc) == []

    def test_two_limit_cycles_when_gain_sufficient(self, net, dc):
        roots = find_intersections(net, dc, loop_gain_scale=7.0)
        assert len(roots) == 2
        unstable, stable = roots
        assert unstable.amplitude < stable.amplitude
        assert unstable.stable_limit_cycle is False
        assert stable.stable_limit_cycle is True
        # Both above the DF domain edge.
        assert unstable.amplitude > dc.k
        # Residuals are genuine solutions of the characteristic equation.
        assert unstable.residual < 1e-6
        assert stable.residual < 1e-6

    def test_intersection_frequency_near_phase_crossover(self, net, dc):
        """For the real-axis DF locus, the oscillation frequency is the
        plant's phase-crossover frequency."""
        roots = find_intersections(net, dc, loop_gain_scale=7.0)
        crossover = principal_phase_crossover(net, dc, loop_gain_scale=7.0)
        for root in roots:
            assert root.frequency == pytest.approx(
                crossover.frequency, rel=1e-3
            )

    def test_dt_requires_larger_gain_than_dc(self, net, dc, dt):
        """DT-DCTCP's locus is harder to reach - the paper's Theorem 2
        conclusion expressed as intersection gain."""
        gain = 5.5
        assert find_intersections(net, dc, loop_gain_scale=gain)
        assert not find_intersections(net, dt, loop_gain_scale=gain)

    def test_period_property(self, net, dc):
        roots = find_intersections(net, dc, loop_gain_scale=7.0)
        root = roots[0]
        assert root.period == pytest.approx(2 * math.pi / root.frequency)


class TestWindingNumber:
    def test_unit_circle_around_origin(self):
        theta = np.linspace(0, 2 * np.pi, 100, endpoint=False)
        circle = np.exp(1j * theta)
        assert winding_number(circle, 0 + 0j) == 1

    def test_clockwise_circle(self):
        theta = np.linspace(0, -2 * np.pi, 100, endpoint=False)
        assert winding_number(np.exp(1j * theta), 0 + 0j) == -1

    def test_point_outside(self):
        theta = np.linspace(0, 2 * np.pi, 100, endpoint=False)
        assert winding_number(np.exp(1j * theta), 3 + 0j) == 0

    def test_double_wind(self):
        theta = np.linspace(0, 4 * np.pi, 200, endpoint=False)
        assert winding_number(np.exp(1j * theta), 0 + 0j) == 2

    def test_rejects_point_on_curve(self):
        with pytest.raises(ValueError):
            winding_number([1 + 0j, 2 + 0j], 1 + 0j)
