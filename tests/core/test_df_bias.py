"""Tests for the bias-corrected describing function."""

import math

import pytest

from repro.core.describing_function import (
    df_relay_with_bias,
    df_single_threshold,
    numeric_df_single,
)
from repro.experiments.df_bias import predicted_amplitude


class TestBiasedRelayDf:
    def test_zero_bias_reduces_to_eq22(self):
        x, k = 70.0, 40.0
        assert df_relay_with_bias(x, k, bias=0.0) == pytest.approx(
            df_single_threshold(x, k)
        )

    def test_bias_at_threshold_is_ideal_relay(self):
        for x in (5.0, 20.0, 100.0):
            assert df_relay_with_bias(x, 40.0, bias=40.0) == pytest.approx(
                complex(2.0 / (math.pi * x), 0.0)
            )

    def test_bias_above_threshold_symmetric(self):
        # |K - bias| enters squared: +d and -d give the same gain.
        x, k = 30.0, 40.0
        lo = df_relay_with_bias(x, k, bias=k - 10.0)
        hi = df_relay_with_bias(x, k, bias=k + 10.0)
        assert lo == pytest.approx(hi)

    def test_domain_restriction(self):
        with pytest.raises(ValueError):
            df_relay_with_bias(5.0, 40.0, bias=0.0)  # |K-bias| > X

    def test_matches_numeric_fourier_with_offset(self):
        x, k, bias = 25.0, 40.0, 30.0
        closed = df_relay_with_bias(x, k, bias)
        numeric = numeric_df_single(x, k, offset=bias)
        assert closed == pytest.approx(numeric, abs=1e-3)

    def test_small_amplitude_allowed_at_operating_bias(self):
        """The whole point: at bias = K even tiny oscillations have a
        defined DF, so a limit cycle can exist at any loop gain."""
        value = df_relay_with_bias(1.0, 40.0, bias=40.0)
        assert value.real == pytest.approx(2.0 / math.pi)


class TestParameterFreePrediction:
    def test_amplitude_grows_with_n_through_the_regime(self):
        amps = [predicted_amplitude(n) for n in (10, 25, 40)]
        assert amps == sorted(amps)

    def test_amplitude_scale_matches_simulation_order(self):
        # N = 10: predicted ~10.7 packets; the paper-parameter packet
        # simulation measures ~11.5 (see repro.experiments.df_bias).
        assert predicted_amplitude(10) == pytest.approx(10.7, abs=1.0)

    def test_closed_form(self):
        from repro.core.nyquist import principal_phase_crossover
        from repro.core.parameters import (
            SingleThresholdParams,
            paper_network,
        )

        crossover = principal_phase_crossover(
            paper_network(20), SingleThresholdParams(k=40.0)
        )
        assert predicted_amplitude(20) == pytest.approx(
            2.0 * 40.0 * crossover.magnitude / math.pi
        )
