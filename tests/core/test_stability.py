"""Unit tests for Theorems 1 and 2 (repro.core.stability)."""

import math

import pytest

from repro.core.parameters import (
    DoubleThresholdParams,
    SingleThresholdParams,
    paper_network,
)
from repro.core.stability import (
    analyze,
    calibrate_gain_scale,
    critical_flow_count,
    margin_sweep,
    predicted_limit_cycle,
    stability_margin,
    sufficient_condition_holds,
)

DC = SingleThresholdParams(k=40.0)
DT = DoubleThresholdParams(k1=30.0, k2=50.0)


@pytest.fixture(scope="module")
def calibrated_scale():
    """Figure 9's convention: DCTCP locus touches its DF locus at N=60."""
    return calibrate_gain_scale(paper_network(10), DC, onset_flows=60)


class TestSufficientCondition:
    def test_holds_at_literal_paper_gain(self):
        # Uncalibrated Eq. 13-18 never reach -pi: always stable.
        for n in (10, 60, 100):
            assert sufficient_condition_holds(paper_network(n), DC)
            assert sufficient_condition_holds(paper_network(n), DT)

    def test_fails_at_large_gain(self):
        assert not sufficient_condition_holds(
            paper_network(60), DC, loop_gain_scale=10.0
        )

    def test_condition_is_conservative_for_dt(self):
        """The binary condition compares real-axis landmarks only, so at
        gain 6 it fails for *both* mechanisms - yet only DCTCP actually
        intersects.  The margin (and intersections) are the sharp test;
        this documents why.
        """
        from repro.core.nyquist import find_intersections

        net = paper_network(60)
        gain = 6.0
        assert not sufficient_condition_holds(net, DC, loop_gain_scale=gain)
        assert not sufficient_condition_holds(net, DT, loop_gain_scale=gain)
        assert find_intersections(net, DC, loop_gain_scale=gain)
        assert not find_intersections(net, DT, loop_gain_scale=gain)


class TestStabilityMargin:
    def test_positive_at_literal_gain(self):
        assert stability_margin(paper_network(60), DC) > 0.5

    def test_decreases_with_gain(self):
        net = paper_network(60)
        margins = [
            stability_margin(net, DC, loop_gain_scale=s) for s in (1.0, 3.0, 5.0)
        ]
        assert margins[0] > margins[1] > margins[2]

    def test_zero_at_calibration_point(self, calibrated_scale):
        margin = stability_margin(
            paper_network(60), DC, loop_gain_scale=calibrated_scale
        )
        assert margin == pytest.approx(0.0, abs=1e-4)

    def test_dt_margin_exceeds_dc_margin_at_every_n(self, calibrated_scale):
        """The reproduction's core analytic claim (Figure 9)."""
        for n in range(10, 101, 10):
            net = paper_network(n)
            dc_m = stability_margin(net, DC, loop_gain_scale=calibrated_scale)
            dt_m = stability_margin(net, DT, loop_gain_scale=calibrated_scale)
            assert dt_m > dc_m

    def test_margin_sweep_matches_pointwise(self, calibrated_scale):
        flows = (10, 40, 80)
        swept = margin_sweep(paper_network(10), DC, flows, calibrated_scale)
        for n, m in zip(flows, swept):
            assert m == pytest.approx(
                stability_margin(
                    paper_network(n), DC, loop_gain_scale=calibrated_scale
                ),
                abs=1e-9,
            )

    def test_least_stable_near_n55(self, calibrated_scale):
        """The margin-vs-N curve dips around N ~ 55 - the uncalibrated
        shape that lines up with the paper's onset claim."""
        margins = {
            n: stability_margin(
                paper_network(n), DC, loop_gain_scale=calibrated_scale
            )
            for n in (10, 55, 100)
        }
        assert margins[55] < margins[10]
        assert margins[55] < margins[100]


class TestLimitCycle:
    def test_none_when_stable(self):
        assert predicted_limit_cycle(paper_network(60), DC) is None

    def test_predicted_when_gain_large(self):
        cycle = predicted_limit_cycle(
            paper_network(60), DC, loop_gain_scale=7.0
        )
        assert cycle is not None
        assert cycle.stable_limit_cycle is True
        assert cycle.amplitude > DC.k
        # Period of a few RTTs - the timescale of DCTCP queue oscillation.
        assert 2 < cycle.period / 100e-6 < 20

    def test_amplitude_grows_with_gain(self):
        net = paper_network(60)
        small = predicted_limit_cycle(net, DC, loop_gain_scale=6.0)
        large = predicted_limit_cycle(net, DC, loop_gain_scale=9.0)
        assert small is not None and large is not None
        assert large.amplitude > small.amplitude


class TestCriticalFlowCount:
    def test_none_when_never_unstable(self):
        assert (
            critical_flow_count(paper_network(10), DC, range(10, 101, 10))
            is None
        )

    def test_dc_has_onset_dt_does_not(self, calibrated_scale):
        flows = range(10, 101, 5)
        dc_onset = critical_flow_count(
            paper_network(10), DC, flows, calibrated_scale
        )
        dt_onset = critical_flow_count(
            paper_network(10), DT, flows, calibrated_scale
        )
        assert dc_onset is not None
        assert 40 <= dc_onset <= 60
        assert dt_onset is None

    def test_returns_smallest_unstable_n(self, calibrated_scale):
        flows = [100, 50, 10]  # deliberately unsorted
        onset = critical_flow_count(
            paper_network(10), DC, flows, calibrated_scale
        )
        assert onset == 50


class TestCalibration:
    def test_scale_reproduces_figure9_convention(self, calibrated_scale):
        # Crossover magnitude 0.58 -> scale ~ pi / 0.58 ~ 5.4.
        assert calibrated_scale == pytest.approx(math.pi / 0.58, rel=0.02)

    def test_analyze_bundles_everything(self, calibrated_scale):
        report = analyze(paper_network(50), DC, loop_gain_scale=calibrated_scale)
        assert report.margin == pytest.approx(0.0, abs=5e-3)
        assert not report.sufficient_condition
        assert report.crossover is not None
        if report.oscillation_predicted:
            assert report.predicted_amplitude > DC.k
            assert report.predicted_frequency > 0

    def test_analyze_stable_case(self):
        report = analyze(paper_network(10), DC)
        assert report.sufficient_condition
        assert report.margin > 0.0
        assert not report.oscillation_predicted
        assert report.predicted_amplitude is None
        assert report.predicted_frequency is None
