"""Unit tests for repro.core.parameters."""

import math

import pytest

from repro.core.parameters import (
    DEFAULT_PACKET_SIZE_BYTES,
    DoubleThresholdParams,
    NetworkParams,
    SingleThresholdParams,
    paper_dctcp,
    paper_dt_dctcp,
    paper_network,
)


class TestNetworkParams:
    def test_from_bandwidth_converts_to_packets_per_second(self):
        net = NetworkParams.from_bandwidth(10e9, n_flows=10, rtt=100e-6)
        assert net.capacity == pytest.approx(10e9 / (8 * 1500))

    def test_from_bandwidth_custom_packet_size(self):
        net = NetworkParams.from_bandwidth(
            1e9, n_flows=1, rtt=1e-3, packet_size_bytes=1000
        )
        assert net.capacity == pytest.approx(125000.0)

    def test_paper_network_matches_section_vi(self):
        net = paper_network(10)
        assert net.n_flows == 10
        assert net.rtt == pytest.approx(100e-6)
        assert net.g == pytest.approx(1.0 / 16.0)
        assert net.capacity == pytest.approx(10e9 / (8 * DEFAULT_PACKET_SIZE_BYTES))

    def test_window_at_operating_point(self):
        net = paper_network(10)
        assert net.window_at_operating_point == pytest.approx(
            net.rtt * net.capacity / 10
        )

    def test_bandwidth_delay_product_small_pipe(self):
        # The paper's pipe holds only ~83 packets - load-bearing for the
        # interpretation of the large-N regime.
        net = paper_network(10)
        assert 80 < net.bandwidth_delay_product < 90

    def test_with_flows_changes_only_n(self):
        net = paper_network(10)
        other = net.with_flows(60)
        assert other.n_flows == 60
        assert other.capacity == net.capacity
        assert other.rtt == net.rtt
        assert other.g == net.g

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0.0, "n_flows": 1, "rtt": 1e-4},
            {"capacity": -1.0, "n_flows": 1, "rtt": 1e-4},
            {"capacity": 1e5, "n_flows": 0, "rtt": 1e-4},
            {"capacity": 1e5, "n_flows": 1, "rtt": 0.0},
            {"capacity": 1e5, "n_flows": 1, "rtt": 1e-4, "g": 0.0},
            {"capacity": 1e5, "n_flows": 1, "rtt": 1e-4, "g": 1.0},
            {"capacity": 1e5, "n_flows": 1, "rtt": 1e-4, "g": -0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkParams(**kwargs)

    def test_from_bandwidth_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            NetworkParams.from_bandwidth(0.0, 1, 1e-4)
        with pytest.raises(ValueError):
            NetworkParams.from_bandwidth(1e9, 1, 1e-4, packet_size_bytes=0)


class TestOperatingPoint:
    def test_fixed_point_solves_fluid_equations(self):
        net = paper_network(10)
        op = net.operating_point(40.0)
        # W0 = R0 C / N and alpha0 = sqrt(2/W0) (Section V-A).
        assert op.window == pytest.approx(net.rtt * net.capacity / 10)
        assert op.alpha == pytest.approx(math.sqrt(2.0 / op.window))
        assert op.p == op.alpha
        assert op.queue == 40.0

    def test_strict_rejects_overloaded_pipe(self):
        # N = 60 gives W0 < 2 on the paper's pipe.
        net = paper_network(60)
        with pytest.raises(ValueError, match="W0"):
            net.operating_point(40.0, strict=True)

    def test_lenient_clamps_alpha_to_one(self):
        net = paper_network(60)
        op = net.operating_point(40.0)
        assert op.alpha == 1.0
        assert op.window < 2.0

    def test_alpha_decreases_with_window(self):
        alphas = [
            paper_network(n).operating_point(40.0).alpha for n in (5, 10, 20)
        ]
        assert alphas == sorted(alphas)


class TestThresholdParams:
    def test_single_threshold_setpoint_and_gain(self):
        p = SingleThresholdParams(k=40.0)
        assert p.setpoint == 40.0
        assert p.characteristic_gain == pytest.approx(1.0 / 40.0)

    def test_single_threshold_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SingleThresholdParams(k=0.0)

    def test_double_threshold_setpoint_is_midpoint(self):
        p = DoubleThresholdParams(k1=30.0, k2=50.0)
        assert p.setpoint == pytest.approx(40.0)
        assert p.gap == pytest.approx(20.0)

    def test_double_threshold_gain_uses_k2(self):
        # Theorem 2: K0 = 1/K2.
        p = DoubleThresholdParams(k1=30.0, k2=50.0)
        assert p.characteristic_gain == pytest.approx(1.0 / 50.0)

    def test_double_threshold_allows_equal_thresholds(self):
        # K1 = K2 degenerates to the single threshold.
        p = DoubleThresholdParams(k1=40.0, k2=40.0)
        assert p.gap == 0.0

    def test_double_threshold_rejects_inverted(self):
        with pytest.raises(ValueError):
            DoubleThresholdParams(k1=50.0, k2=30.0)

    def test_double_threshold_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DoubleThresholdParams(k1=0.0, k2=10.0)

    def test_paper_defaults(self):
        assert paper_dctcp().k == 40.0
        dt = paper_dt_dctcp()
        assert (dt.k1, dt.k2) == (30.0, 50.0)
        # The paper chose the DT pair to average DCTCP's K.
        assert dt.setpoint == paper_dctcp().setpoint
