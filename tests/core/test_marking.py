"""Unit tests for the marking mechanisms (repro.core.marking)."""

import math
import random

import pytest

from repro.core.marking import (
    DoubleThresholdMarker,
    Marker,
    NullMarker,
    REDMarker,
    SingleThresholdMarker,
    marking_waveform_double,
    marking_waveform_single,
)
from repro.core.parameters import DoubleThresholdParams, SingleThresholdParams


class TestNullMarker:
    def test_never_marks(self):
        m = NullMarker()
        assert not any(m.should_mark(q) for q in (0, 1, 1e6))

    def test_satisfies_protocol(self):
        assert isinstance(NullMarker(), Marker)


class TestSingleThresholdMarker:
    def test_marks_at_and_above_threshold(self):
        m = SingleThresholdMarker.from_threshold(40.0)
        assert not m.should_mark(39.999)
        assert m.should_mark(40.0)
        assert m.should_mark(41.0)

    def test_memoryless(self):
        m = SingleThresholdMarker.from_threshold(40.0)
        m.should_mark(100.0)
        assert not m.should_mark(10.0)
        m.reset()
        assert m.should_mark(45.0)

    def test_satisfies_protocol(self):
        assert isinstance(SingleThresholdMarker.from_threshold(1.0), Marker)


class TestDoubleThresholdMarker:
    def make(self, deadband=0.0):
        return DoubleThresholdMarker.from_thresholds(30.0, 50.0, deadband=deadband)

    def test_initially_unmarked(self):
        assert not self.make().should_mark(40.0)

    def test_always_marks_above_k2(self):
        m = self.make()
        assert m.should_mark(50.0)
        assert m.should_mark(51.0)

    def test_never_marks_below_k1(self):
        m = self.make()
        m.should_mark(60.0)  # force ON
        assert not m.should_mark(29.0)

    def test_starts_marking_on_rise_through_k1(self):
        m = self.make()
        assert not m.should_mark(25.0)
        assert m.should_mark(31.0)  # rising into the band -> ON
        assert m.should_mark(35.0)

    def test_stops_marking_on_fall_through_k2(self):
        m = self.make()
        m.should_mark(60.0)  # ON above K2
        assert not m.should_mark(49.0)  # falling into the band -> OFF

    def test_holds_state_on_flat_queue(self):
        m = self.make()
        m.should_mark(25.0)
        m.should_mark(35.0)  # rising -> ON
        assert m.should_mark(35.0)  # flat -> hold ON
        assert m.should_mark(35.0)

    def test_full_excursion_matches_paper_figure8(self):
        """Rising: first mark at K1. Falling: last mark at K2."""
        m = self.make()
        marks_up = [(q, m.should_mark(q)) for q in range(0, 71)]
        first_marked = next(q for q, marked in marks_up if marked)
        assert first_marked == 30
        marks_down = [(q, m.should_mark(q)) for q in range(70, -1, -1)]
        lowest_marked_falling = min(q for q, marked in marks_down if marked)
        assert lowest_marked_falling == 50

    def test_deadband_rejects_small_jitter(self):
        m = self.make(deadband=2.0)
        m.should_mark(25.0)
        m.should_mark(40.0)  # big rise -> ON
        assert m.should_mark(39.5)  # -0.5 within deadband -> hold ON
        assert m.should_mark(40.5)
        assert not m.should_mark(37.0)  # -3.5 beyond deadband -> OFF

    def test_deadband_zero_flips_on_any_move(self):
        m = self.make(deadband=0.0)
        m.should_mark(40.0)
        assert m.should_mark(40.5)
        assert not m.should_mark(40.4)

    def test_reset_restores_initial_state(self):
        m = self.make()
        m.should_mark(60.0)
        m.reset()
        assert not m.marking
        assert not m.should_mark(40.0)  # unknown direction -> OFF

    def test_observe_is_alias_for_should_mark(self):
        m = self.make()
        assert m.observe(60.0) is True
        assert m.marking

    def test_negative_deadband_rejected(self):
        with pytest.raises(ValueError):
            DoubleThresholdMarker.from_thresholds(30.0, 50.0, deadband=-1.0)

    def test_equal_thresholds_degenerate_to_relay(self):
        m = DoubleThresholdMarker.from_thresholds(40.0, 40.0)
        relay = SingleThresholdMarker.from_threshold(40.0)
        queue = [10, 20, 39, 40, 41, 60, 45, 40, 39.9, 20]
        assert [m.should_mark(q) for q in queue] == [
            relay.should_mark(q) for q in queue
        ]

    def test_satisfies_protocol(self):
        assert isinstance(self.make(), Marker)


class TestREDMarker:
    def test_probability_profile(self):
        m = REDMarker(min_th=20.0, max_th=60.0, max_p=0.1)
        assert m.marking_probability(10.0) == 0.0
        assert m.marking_probability(20.0) == 0.0
        assert m.marking_probability(40.0) == pytest.approx(0.05)
        assert m.marking_probability(60.0) == 1.0
        assert m.marking_probability(100.0) == 1.0

    def test_never_marks_below_min_threshold(self):
        m = REDMarker(min_th=20.0, max_th=60.0)
        assert not any(m.should_mark(5.0) for _ in range(100))

    def test_always_marks_when_average_beyond_max(self):
        m = REDMarker(min_th=2.0, max_th=4.0, weight=1.0)
        m.should_mark(100.0)  # average jumps to 100 with weight 1
        assert m.should_mark(100.0)

    def test_average_tracks_queue_with_ewma(self):
        m = REDMarker(min_th=20.0, max_th=60.0, weight=0.5)
        m.should_mark(10.0)
        m.should_mark(20.0)
        assert m.average_queue == pytest.approx(15.0)

    def test_marking_rate_approximates_probability(self):
        m = REDMarker(
            min_th=10.0, max_th=30.0, max_p=0.5, weight=1.0,
            rng=random.Random(42),
        )
        marks = sum(m.should_mark(20.0) for _ in range(4000))
        assert 0.2 < marks / 4000 < 0.3  # expected 0.25

    def test_reset_clears_average(self):
        m = REDMarker(min_th=20.0, max_th=60.0)
        m.should_mark(100.0)
        m.reset()
        assert m.average_queue == 0.0

    def test_reset_restores_rng_for_deterministic_replay(self):
        """Regression: reset() cleared the EWMA but left the RNG
        advanced, so a replayed queue saw a different mark sequence."""
        m = REDMarker(min_th=5.0, max_th=15.0, max_p=0.5, weight=1.0)
        first = [m.should_mark(10.0) for _ in range(100)]
        m.reset()
        replay = [m.should_mark(10.0) for _ in range(100)]
        assert first == replay
        assert any(first)  # the sequence actually exercised the dice
        assert not all(first)

    def test_reset_replay_with_explicit_rng(self):
        m = REDMarker(
            min_th=5.0, max_th=15.0, max_p=0.5, weight=1.0,
            rng=random.Random(1234),
        )
        first = [m.should_mark(12.0) for _ in range(50)]
        m.reset()
        assert [m.should_mark(12.0) for _ in range(50)] == first

    def test_rng_without_state_api_still_resets_average(self):
        class StreamOnly:
            def __init__(self):
                self.calls = 0

            def random(self):
                self.calls += 1
                return 0.99

        m = REDMarker(min_th=5.0, max_th=15.0, weight=1.0, rng=StreamOnly())
        m.should_mark(10.0)
        m.reset()
        assert m.average_queue == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_th": 0.0, "max_th": 10.0},
            {"min_th": 10.0, "max_th": 10.0},
            {"min_th": 10.0, "max_th": 20.0, "max_p": 0.0},
            {"min_th": 10.0, "max_th": 20.0, "max_p": 1.5},
            {"min_th": 10.0, "max_th": 20.0, "weight": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            REDMarker(**kwargs)


class TestWaveforms:
    def test_single_waveform_on_interval(self):
        # ON exactly for phase in [arcsin(K/X), pi - arcsin(K/X)].
        x, k = 80.0, 40.0
        phi1 = math.asin(k / x)
        assert marking_waveform_single(phi1 + 1e-6, x, k) == 1.0
        assert marking_waveform_single(phi1 - 1e-3, x, k) == 0.0
        assert marking_waveform_single(math.pi - phi1 - 1e-6, x, k) == 1.0
        assert marking_waveform_single(math.pi - phi1 + 1e-3, x, k) == 0.0

    def test_double_waveform_on_interval(self):
        x, k1, k2 = 80.0, 30.0, 50.0
        phi1 = math.asin(k1 / x)
        phi2 = math.pi - math.asin(k2 / x)
        assert marking_waveform_double(phi1 + 1e-6, x, k1, k2) == 1.0
        assert marking_waveform_double(phi1 - 1e-3, x, k1, k2) == 0.0
        assert marking_waveform_double(phi2 - 1e-6, x, k1, k2) == 1.0
        assert marking_waveform_double(phi2 + 1e-3, x, k1, k2) == 0.0

    def test_double_waveform_zero_when_amplitude_below_k2(self):
        assert marking_waveform_double(math.pi / 2, 40.0, 30.0, 50.0) == 0.0

    def test_waveforms_respect_offset(self):
        # Shifting the bias shifts the effective threshold.
        assert marking_waveform_single(math.pi / 2, 10.0, 45.0, offset=40.0) == 1.0
        assert marking_waveform_single(math.pi / 2, 10.0, 55.0, offset=40.0) == 0.0
