"""Tests for the sawtooth steady-state model (SIGCOMM'10 closed forms)."""

import math

import pytest

from repro.core.parameters import SingleThresholdParams, paper_network
from repro.core.sawtooth import predict

DC = SingleThresholdParams(k=40.0)


class TestClosedForms:
    def test_critical_window(self):
        net = paper_network(10)
        pred = predict(net, DC)
        assert pred.critical_window == pytest.approx(
            (net.capacity * net.rtt + 40.0) / 10
        )

    def test_alpha_small_signal_form(self):
        net = paper_network(10)
        pred = predict(net, DC)
        assert pred.alpha == pytest.approx(
            math.sqrt(2.0 / pred.critical_window)
        )

    def test_amplitude_scales_like_sqrt_n(self):
        """The analytic backbone of Figure 11's growth."""
        a10 = predict(paper_network(10), DC).amplitude
        a40 = predict(paper_network(40), DC).amplitude
        assert a40 / a10 == pytest.approx(2.0, rel=0.15)

    def test_amplitude_closed_form(self):
        net = paper_network(10)
        pred = predict(net, DC)
        expected = math.sqrt(10 * (net.capacity * net.rtt + 40.0) / 2.0)
        assert pred.amplitude == pytest.approx(expected)

    def test_queue_extremes_consistent(self):
        pred = predict(paper_network(10), DC)
        assert pred.queue_max > DC.k
        assert pred.queue_min >= 0.0
        assert pred.queue_max - pred.queue_min <= pred.amplitude + 1e-9

    def test_underflow_flag(self):
        """A too-shallow K drains the queue empty each cycle - the
        failure mode that sets DCTCP's K >= 0.17*BDP guideline and that
        the paper's early-stop threshold targets."""
        shallow = SingleThresholdParams(k=3.0)
        pred = predict(paper_network(1), shallow)
        assert pred.underflows
        assert pred.queue_min == 0.0
        # The paper's generous K = 40 on this pipe never underflows.
        assert not predict(paper_network(10), DC).underflows

    def test_period_positive_few_rtts(self):
        net = paper_network(10)
        pred = predict(net, DC)
        assert 1.0 < pred.period / net.rtt < 50.0

    def test_validity_domain(self):
        with pytest.raises(ValueError):
            predict(paper_network(100), DC)

    def test_std_estimate_is_triangle_wave_std(self):
        pred = predict(paper_network(10), DC)
        assert pred.oscillation_std_estimate == pytest.approx(
            pred.amplitude / (2 * math.sqrt(3))
        )


class TestAgainstSimulation:
    def test_amplitude_upper_bounds_packet_sim(self):
        """Synchronized analysis is an envelope: the (partly
        desynchronized) packet simulation oscillates no harder."""
        from repro.core.marking import SingleThresholdMarker
        from repro.sim.apps.bulk import launch_bulk_flows
        from repro.sim.topology import dumbbell
        from repro.sim.trace import QueueMonitor

        net = paper_network(10)
        pred = predict(net, DC)
        nw = dumbbell(10, lambda: SingleThresholdMarker.from_threshold(40))
        launch_bulk_flows(nw)
        mon = QueueMonitor(nw.sim, nw.bottleneck_queue, interval=10e-6)
        mon.start()
        nw.sim.run(until=0.02)
        queue = mon.series(after=0.008)
        measured_swing = queue.max() - queue.min()
        assert measured_swing <= pred.amplitude * 1.5
        assert queue.std() <= pred.oscillation_std_estimate * 2.0
