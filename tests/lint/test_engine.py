"""Engine mechanics: suppressions, baseline round-trip, cache, output."""

import ast
import json
import textwrap
from pathlib import Path
from typing import Iterator

import pytest

from repro.lint import (
    Baseline,
    FileContext,
    Finding,
    LintEngine,
    Rule,
    default_rules,
    render_json,
    render_text,
)


class FlagEveryCall(Rule):
    """Test double: one finding per function call."""

    id = "TST001"
    title = "call flagged"
    rationale = "test double"

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield ctx.finding(self.id, node, "call site")


@pytest.fixture()
def engine():
    return LintEngine([FlagEveryCall()])


def lint(engine, source, module="repro.sim.fixture"):
    return engine.lint_source(textwrap.dedent(source), module=module)


class TestSuppressions:
    def test_trailing_comment_covers_own_line(self, engine):
        assert lint(engine, """\
            f()  # repro-lint: disable=TST001 -- why
            g()
            """) == [
            Finding("TST001", "src/repro/sim/fixture.py", 2, "call site")
        ]

    def test_comment_line_covers_next_code_line(self, engine):
        assert lint(engine, """\
            # repro-lint: disable=TST001 -- why
            f()
            g()
            """) == [
            Finding("TST001", "src/repro/sim/fixture.py", 3, "call site")
        ]

    def test_multiline_justification_reaches_the_code(self, engine):
        assert lint(engine, """\
            # repro-lint: disable=TST001 -- a justification long enough
            # to spill onto a second comment line before the statement.
            f()
            g()
            """) == [
            Finding("TST001", "src/repro/sim/fixture.py", 4, "call site")
        ]

    def test_disable_all_and_rule_lists(self, engine):
        assert lint(engine, """\
            f()  # repro-lint: disable=all
            g()  # repro-lint: disable=TST001,OTHER -- both listed
            h()  # repro-lint: disable=OTHER
            """) == [
            Finding("TST001", "src/repro/sim/fixture.py", 3, "call site")
        ]

    def test_unrelated_comments_do_not_suppress(self, engine):
        assert len(lint(engine, """\
            f()  # plain comment
            # repro-lint enable soon (malformed: no disable=)
            g()
            """)) == 2


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            Finding("TST001", "src/a.py", 3, "call site"),
            Finding("TST001", "src/a.py", 9, "call site"),
            Finding("TST001", "src/b.py", 1, "call site"),
        ]
        path = tmp_path / "baseline.json"
        Baseline.write(findings, path)
        loaded = Baseline.load(path)
        assert len(loaded) == 3
        new, matched = loaded.filter(findings)
        assert new == [] and len(matched) == 3

    def test_matching_is_line_insensitive_but_counted(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write([Finding("TST001", "src/a.py", 3, "call site")], path)
        loaded = Baseline.load(path)
        # Same finding on a shifted line still matches...
        new, matched = loaded.filter(
            [Finding("TST001", "src/a.py", 40, "call site")]
        )
        assert new == [] and len(matched) == 1
        # ...but a baseline entry absorbs only one occurrence.
        new, matched = loaded.filter(
            [
                Finding("TST001", "src/a.py", 3, "call site"),
                Finding("TST001", "src/a.py", 9, "call site"),
            ]
        )
        assert len(new) == 1 and len(matched) == 1

    def test_missing_file_is_empty(self, tmp_path):
        loaded = Baseline.load(tmp_path / "nope.json")
        assert len(loaded) == 0
        new, matched = loaded.filter(
            [Finding("TST001", "src/a.py", 1, "call site")]
        )
        assert len(new) == 1 and matched == []

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


class TestLintTree:
    @staticmethod
    def _tree(tmp_path: Path) -> Path:
        src = tmp_path / "src"
        pkg = src / "repro" / "sim"
        pkg.mkdir(parents=True)
        (src / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("f()\n")
        return src

    def test_walks_tree_and_reports(self, engine, tmp_path):
        src = self._tree(tmp_path)
        findings = engine.lint_tree(src_root=src, project_root=tmp_path)
        assert findings == [
            Finding("TST001", "src/repro/sim/mod.py", 1, "call site")
        ]

    def test_syntax_error_becomes_parse_finding(self, engine, tmp_path):
        src = self._tree(tmp_path)
        (src / "repro" / "sim" / "broken.py").write_text("def f(:\n")
        findings = engine.lint_tree(src_root=src, project_root=tmp_path)
        parse = [f for f in findings if f.rule == "PARSE"]
        assert len(parse) == 1
        assert parse[0].path == "src/repro/sim/broken.py"

    def test_cache_hits_and_invalidates(self, engine, tmp_path):
        src = self._tree(tmp_path)
        cache_dir = tmp_path / ".lint-cache"
        first = engine.lint_tree(
            src_root=src, project_root=tmp_path, cache_dir=cache_dir
        )
        assert (cache_dir / "cache.json").is_file()
        # Warm run: identical results straight from the cache.
        assert engine.lint_tree(
            src_root=src, project_root=tmp_path, cache_dir=cache_dir
        ) == first
        # Editing a file invalidates its entry.
        mod = src / "repro" / "sim" / "mod.py"
        mod.write_text("f()\ng()\n")
        import os
        os.utime(mod, ns=(1, 10**15))  # force a distinct mtime key
        assert len(engine.lint_tree(
            src_root=src, project_root=tmp_path, cache_dir=cache_dir
        )) == 2

    def test_cache_is_signature_keyed(self, engine, tmp_path):
        src = self._tree(tmp_path)
        cache_dir = tmp_path / ".lint-cache"
        engine.lint_tree(
            src_root=src, project_root=tmp_path, cache_dir=cache_dir
        )
        payload = json.loads((cache_dir / "cache.json").read_text())
        assert payload["signature"] == engine.signature
        # A different rule pack ignores (and rewrites) the stale cache.
        class Renamed(FlagEveryCall):
            id = "TST002"
        other = LintEngine([Renamed()])
        findings = other.lint_tree(
            src_root=src, project_root=tmp_path, cache_dir=cache_dir
        )
        assert [f.rule for f in findings] == ["TST002"]

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LintEngine([FlagEveryCall(), FlagEveryCall()])


class TestRendering:
    def test_text_includes_location_title_and_summary(self):
        text = render_text(
            [Finding("TST001", "src/a.py", 3, "call site")],
            baselined=2,
            rules=[FlagEveryCall()],
        )
        assert "src/a.py:3: TST001: call site" in text
        assert "[call flagged]" in text
        assert "1 finding(s) (2 baselined and hidden)" in text

    def test_json_is_stable_and_parseable(self):
        payload = json.loads(
            render_json(
                [Finding("TST001", "src/a.py", 3, "call site")], baselined=1
            )
        )
        assert payload["count"] == 1
        assert payload["baselined"] == 1
        assert payload["findings"][0]["path"] == "src/a.py"


class TestDefaultPack:
    def test_rule_ids_unique_and_documented(self):
        rules = default_rules()
        ids = [rule.id for rule in rules]
        assert len(set(ids)) == len(ids) == 6
        for rule in rules:
            assert rule.title and rule.rationale
