"""Meta-tests: the shipped tree itself satisfies the lint gate.

These are the tests that make the gate real: if a change introduces a
wall-clock read, an unseeded RNG, a stray ``os.environ["REPRO_*"]``, or
an un-pinned kernel switch, the tier-1 suite fails — CI wiring or not.
"""

import json
from pathlib import Path

from repro.lint import (
    Baseline,
    LintEngine,
    default_baseline_path,
    default_rules,
    default_src_root,
)

PROJECT_ROOT = Path(__file__).resolve().parents[2]


def test_default_src_root_is_this_checkout():
    assert default_src_root() == PROJECT_ROOT / "src"


def test_live_tree_lints_clean_modulo_baseline():
    engine = LintEngine(default_rules())
    findings = engine.lint_tree(
        src_root=PROJECT_ROOT / "src", project_root=PROJECT_ROOT
    )
    baseline = Baseline.load(default_baseline_path())
    new, _ = baseline.filter(findings)
    assert new == [], (
        "lint findings not in the committed baseline:\n"
        + "\n".join(f"  {f.path}:{f.line}: {f.rule}: {f.message}" for f in new)
        + "\nFix the finding, add an inline `# repro-lint: disable=...` "
        "with a justification, or (last resort) re-baseline with "
        "`python -m repro.cli lint --baseline`."
    )


def test_committed_baseline_is_empty():
    # The gate launched with every finding fixed or suppressed inline;
    # keep it that way.  Delete this test only with a re-baselining PR
    # that explains which findings were grandfathered and why.
    payload = json.loads(default_baseline_path().read_text())
    assert payload["findings"] == []


def test_registry_matches_readme_and_ci():
    from repro.sim.kernels import parity_problems

    assert parity_problems(PROJECT_ROOT) == []


def test_no_unregistered_repro_env_reads_anywhere():
    """Belt and braces behind KRN001: grep-level scan of src/."""
    import re

    pattern = re.compile(
        r"(?:os\.environ(?:\.get)?|os\.getenv|environ(?:\.get)?)"
        r"\s*[\(\[]\s*['\"](REPRO_\w+)"
    )
    offenders = []
    for path in sorted((PROJECT_ROOT / "src").rglob("*.py")):
        if path.name == "kernels.py":
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if pattern.search(line):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert offenders == []
