"""Per-rule fixtures: each rule fires, stays quiet, and suppresses.

Every rule gets at least one positive fixture (the hazard, caught), one
negative fixture (idiomatic deterministic code, not flagged), and one
suppressed fixture (the hazard plus an inline justification, silenced).
"""

import textwrap

import pytest

from repro.lint import LintEngine, default_rules


@pytest.fixture(scope="module")
def engine():
    return LintEngine(default_rules())


def lint(engine, source, module="repro.sim.fixture"):
    return engine.lint_source(textwrap.dedent(source), module=module)


def rules_fired(engine, source, module="repro.sim.fixture"):
    return sorted({f.rule for f in lint(engine, source, module)})


# ---------------------------------------------------------------------------
# DET001 — wall-clock reads
# ---------------------------------------------------------------------------


class TestWallClock:
    def test_fires_on_time_time(self, engine):
        findings = lint(engine, """\
            import time

            def stamp():
                return time.time()
            """)
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].line == 4
        assert "time.time" in findings[0].message

    def test_fires_on_aliased_import(self, engine):
        assert rules_fired(engine, """\
            from time import perf_counter as clock

            def stamp():
                return clock()
            """) == ["DET001"]

    def test_fires_on_datetime_now(self, engine):
        assert rules_fired(engine, """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """) == ["DET001"]

    def test_quiet_on_simulated_time(self, engine):
        assert rules_fired(engine, """\
            def stamp(sim):
                return sim.now
            """) == []

    def test_quiet_on_time_sleep(self, engine):
        # Only clock *reads* are flagged; sleep is a different hazard.
        assert rules_fired(engine, """\
            import time

            def pause():
                time.sleep(0.1)
            """) == []

    def test_exempt_in_exec_and_perf(self, engine):
        source = """\
            import time

            def stamp():
                return time.time()
            """
        for module in ("repro.exec.executor", "repro.perf.bench"):
            assert rules_fired(engine, source, module=module) == []

    def test_suppressed_with_justification(self, engine):
        assert rules_fired(engine, """\
            import time

            def stamp():
                # repro-lint: disable=DET001 -- operator display only
                return time.time()
            """) == []


# ---------------------------------------------------------------------------
# DET002 — global-state / unseeded RNG
# ---------------------------------------------------------------------------


class TestUnseededRandom:
    def test_fires_on_module_global_random(self, engine):
        findings = lint(engine, """\
            import random

            def jitter():
                return random.random()
            """)
        assert [f.rule for f in findings] == ["DET002"]
        assert "process-global" in findings[0].message

    def test_fires_on_unseeded_random_instance(self, engine):
        assert rules_fired(engine, """\
            import random

            def make_rng():
                return random.Random()
            """) == ["DET002"]

    def test_fires_on_numpy_global_state(self, engine):
        assert rules_fired(engine, """\
            import numpy as np

            def jitter():
                return np.random.uniform(0.0, 1.0)
            """) == ["DET002"]

    def test_fires_on_unseeded_default_rng(self, engine):
        assert rules_fired(engine, """\
            import numpy as np

            def make_rng():
                return np.random.default_rng()
            """) == ["DET002"]

    def test_quiet_on_seeded_generators(self, engine):
        assert rules_fired(engine, """\
            import random
            import numpy as np

            def make(seed):
                return random.Random(seed), np.random.default_rng(seed)
            """) == []

    def test_chaos_scope_fires_on_literal_seed(self, engine):
        # Inside the fault layer a *seeded* constructor is still wrong
        # when the seed is a literal: every ChaosSchedule would replay
        # the same stream regardless of its own seed.
        findings = lint(engine, """\
            import random

            def make_stream():
                return random.Random(1234)
            """, module="repro.sim.chaos")
        assert [f.rule for f in findings] == ["DET002"]
        assert "ChaosSchedule seed" in findings[0].message

    def test_chaos_scope_fires_on_literal_numpy_seed(self, engine):
        assert rules_fired(engine, """\
            import numpy as np

            def make_stream():
                return np.random.default_rng(seed=7)
            """, module="repro.sim.chaos") == ["DET002"]

    def test_chaos_scope_quiet_on_derived_seed(self, engine):
        # The sanctioned shape: the stream seed flows from the schedule
        # seed through derive_stream_seed.
        assert rules_fired(engine, """\
            import random

            def make_stream(schedule_seed, name):
                seed = derive_stream_seed(schedule_seed, "loss", name)
                return random.Random(seed)
            """, module="repro.sim.chaos") == []

    def test_literal_seed_outside_chaos_scope_is_fine(self, engine):
        # Elsewhere in the deterministic packages a literal seed is a
        # legitimate fixed default; only the fault layer forbids it.
        assert rules_fired(engine, """\
            import random

            def make_rng():
                return random.Random(1234)
            """) == []

    def test_out_of_scope_module_is_quiet(self, engine):
        # The executor's seeded-backoff helpers live outside the
        # deterministic packages; DET002 does not police them.
        assert rules_fired(engine, """\
            import random

            def jitter():
                return random.random()
            """, module="repro.exec.executor") == []

    def test_suppressed(self, engine):
        assert rules_fired(engine, """\
            import random

            def jitter():
                return random.random()  # repro-lint: disable=DET002 -- demo
            """) == []


# ---------------------------------------------------------------------------
# DET003 — set iteration feeding order-sensitive sinks
# ---------------------------------------------------------------------------


class TestUnorderedIteration:
    def test_fires_on_for_over_set_literal(self, engine):
        findings = lint(engine, """\
            def post(sim):
                for node in {1, 2, 3}:
                    sim.schedule(node)
            """)
        assert [f.rule for f in findings] == ["DET003"]

    def test_fires_on_for_over_set_typed_local(self, engine):
        assert rules_fired(engine, """\
            def fib(links):
                seen = set()
                for link in links:
                    seen.add(link)
                for link in seen:
                    yield link
            """) == ["DET003"]

    def test_fires_on_list_of_set(self, engine):
        assert rules_fired(engine, """\
            def order(members):
                pending = set(members)
                return list(pending)
            """) == ["DET003"]

    def test_fires_on_listcomp_over_set_difference(self, engine):
        assert rules_fired(engine, """\
            def order(a, b):
                alive = set(a) - set(b)
                return [x for x in alive]
            """) == ["DET003"]

    def test_quiet_when_sorted(self, engine):
        assert rules_fired(engine, """\
            def order(members):
                pending = set(members)
                for m in sorted(pending):
                    yield m
                return sorted(x for x in pending)
            """) == []

    def test_quiet_on_order_insensitive_sinks(self, engine):
        assert rules_fired(engine, """\
            def stats(members):
                pending = set(members)
                total = sum(x for x in pending)
                biggest = max(x for x in pending)
                copies = {x for x in pending}
                return total, biggest, copies
            """) == []

    def test_quiet_on_list_iteration(self, engine):
        assert rules_fired(engine, """\
            def order(members):
                pending = list(members)
                return [x for x in pending]
            """) == []

    def test_rebound_name_is_ambiguous_and_quiet(self, engine):
        # A name also bound to a non-set is not provably a set.
        assert rules_fired(engine, """\
            def order(members, flag):
                pending = set(members)
                if flag:
                    pending = sorted(members)
                return [x for x in pending]
            """) == []

    def test_suppressed(self, engine):
        assert rules_fired(engine, """\
            def order(members):
                pending = set(members)
                # repro-lint: disable=DET003 -- consumer re-sorts downstream
                return list(pending)
            """) == []


# ---------------------------------------------------------------------------
# DET004 — exact equality on simulated-time floats
# ---------------------------------------------------------------------------


class TestFloatTimeEquality:
    def test_fires_on_eq_now(self, engine):
        findings = lint(engine, """\
            def due(event, sim):
                return event.fire_time == sim.now
            """)
        assert [f.rule for f in findings] == ["DET004"]
        assert "ulp" in findings[0].message

    def test_fires_on_neq_deadline(self, engine):
        assert rules_fired(engine, """\
            def pending(handle, t):
                return handle.deadline != t
            """) == ["DET004"]

    def test_fires_on_busy_until(self, engine):
        assert rules_fired(engine, """\
            def idle(link, t):
                return link.busy_until == t
            """) == ["DET004"]

    def test_quiet_on_ordering_comparisons(self, engine):
        assert rules_fired(engine, """\
            def due(event, sim):
                return event.fire_time <= sim.now
            """) == []

    def test_quiet_on_none_check(self, engine):
        # `x.deadline is None` and string compares are out of scope.
        assert rules_fired(engine, """\
            def unarmed(handle):
                return handle.deadline is None or handle.kind == "idle"
            """) == []

    def test_quiet_outside_scope(self, engine):
        assert rules_fired(engine, """\
            def due(event, now):
                return event.fire_time == now
            """, module="repro.exec.executor") == []

    def test_suppressed(self, engine):
        assert rules_fired(engine, """\
            def due(event, sim):
                # repro-lint: disable=DET004 -- exact sentinel comparison
                return event.fire_time == sim.now
            """) == []


# ---------------------------------------------------------------------------
# KRN001 — env reads must go through the registry
# ---------------------------------------------------------------------------


class TestKernelRegistry:
    def test_fires_on_environ_get(self, engine):
        findings = lint(engine, """\
            import os

            CORE = os.environ.get("REPRO_PACKET_CORE", "flat")
            """)
        assert [f.rule for f in findings] == ["KRN001"]
        assert "REPRO_PACKET_CORE" in findings[0].message

    def test_fires_on_environ_subscript_and_getenv(self, engine):
        findings = lint(engine, """\
            import os

            A = os.environ["REPRO_EVENT_QUEUE"]
            B = os.getenv("REPRO_LINK_MODEL")
            """)
        assert [f.rule for f in findings] == ["KRN001", "KRN001"]

    def test_fires_on_from_import(self, engine):
        assert rules_fired(engine, """\
            from os import environ

            CORE = environ.get("REPRO_PACKET_CORE")
            """) == ["KRN001"]

    def test_quiet_on_non_repro_vars(self, engine):
        assert rules_fired(engine, """\
            import os

            HOME = os.environ.get("HOME")
            PATH = os.environ["PATH"]
            """) == []

    def test_registry_module_is_exempt(self, engine):
        assert rules_fired(engine, """\
            import os

            VALUE = os.environ.get("REPRO_EVENT_QUEUE")
            """, module="repro.sim.kernels") == []

    def test_suppressed(self, engine):
        assert rules_fired(engine, """\
            import os

            # repro-lint: disable=KRN001 -- migration shim, see issue
            CORE = os.environ.get("REPRO_PACKET_CORE")
            """) == []


# ---------------------------------------------------------------------------
# EXC001 — swallowed broad excepts in executor paths
# ---------------------------------------------------------------------------


class TestSwallowedException:
    def test_fires_on_bare_except_pass(self, engine):
        findings = lint(engine, """\
            def run(case):
                try:
                    case()
                except:
                    pass
            """, module="repro.exec.executor")
        assert [f.rule for f in findings] == ["EXC001"]
        assert "bare except" in findings[0].message

    def test_fires_on_broad_except_logging_only(self, engine):
        assert rules_fired(engine, """\
            def run(case, log):
                try:
                    case()
                except Exception as exc:
                    log.warning("ignoring %s", exc)
            """, module="repro.exec.executor") == ["EXC001"]

    def test_quiet_when_reraised(self, engine):
        assert rules_fired(engine, """\
            def run(case, log):
                try:
                    case()
                except Exception:
                    log.warning("failed")
                    raise
            """, module="repro.exec.executor") == []

    def test_quiet_when_failure_recorded(self, engine):
        assert rules_fired(engine, """\
            def run(case, report):
                try:
                    case()
                except Exception as exc:
                    report.failures.append(FailureRecord(case, exc))
            """, module="repro.exec.executor") == []

    def test_quiet_on_narrow_except(self, engine):
        assert rules_fired(engine, """\
            def read(path):
                try:
                    return path.read_text()
                except OSError:
                    return None
            """, module="repro.exec.executor") == []

    def test_quiet_outside_executor_paths(self, engine):
        assert rules_fired(engine, """\
            def probe(case):
                try:
                    case()
                except Exception:
                    pass
            """, module="repro.sim.engine") == []

    def test_suppressed(self, engine):
        assert rules_fired(engine, """\
            def teardown(proc):
                try:
                    proc.terminate()
                # repro-lint: disable=EXC001 -- best-effort teardown
                except Exception:
                    pass
            """, module="repro.exec.executor") == []
