"""The strict-typing gate on the deterministic core.

CI runs mypy itself (the ``lint`` job).  Locally, mypy may not be
installed; the mypy run skips cleanly then, but the AST-level
annotation-completeness check below always runs, so an unannotated def
in a strict module fails the tier-1 suite with or without mypy.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

PROJECT_ROOT = Path(__file__).resolve().parents[2]

#: Modules under the strict mypy overrides in pyproject.toml.
STRICT_FILES = [
    PROJECT_ROOT / "src" / "repro" / "sim" / "engine.py",
    PROJECT_ROOT / "src" / "repro" / "sim" / "packet_core.py",
    PROJECT_ROOT / "src" / "repro" / "campaign" / "grid.py",
] + sorted((PROJECT_ROOT / "src" / "repro" / "stats").rglob("*.py"))


def test_py_typed_marker_ships():
    assert (PROJECT_ROOT / "src" / "repro" / "py.typed").is_file()


def test_strict_modules_are_fully_annotated():
    """disallow_untyped_defs/-incomplete_defs, enforced without mypy."""
    problems = []
    for path in STRICT_FILES:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            rel = path.relative_to(PROJECT_ROOT)
            if node.returns is None:
                problems.append(f"{rel}:{node.lineno}: {node.name}: no "
                                "return annotation")
            args = node.args
            everything = args.posonlyargs + args.args + args.kwonlyargs
            for i, arg in enumerate(everything):
                if i == 0 and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    problems.append(f"{rel}:{node.lineno}: {node.name}: "
                                    f"arg {arg.arg!r} unannotated")
            for arg in (args.vararg, args.kwarg):
                if arg is not None and arg.annotation is None:
                    problems.append(f"{rel}:{node.lineno}: {node.name}: "
                                    f"*{arg.arg} unannotated")
    assert problems == []


def test_mypy_config_names_the_strict_modules():
    text = (PROJECT_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.mypy]" in text
    for module in (
        "repro.sim.engine",
        "repro.sim.packet_core",
        "repro.stats",
        "repro.campaign.grid",
    ):
        assert f'"{module}"' in text
    assert "disallow_untyped_defs = true" in text


def test_mypy_clean():
    pytest.importorskip("mypy", reason="mypy not installed (CI installs it)")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=PROJECT_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"mypy failed:\n{result.stdout}\n{result.stderr}"
    )
