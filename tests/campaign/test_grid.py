"""Campaign grid expansion and cache-key stability."""

import json

import pytest

from repro.campaign.grid import (
    SCENARIOS,
    SENDERS,
    CampaignGrid,
    CellCoord,
    threshold_label,
)
from repro.exec.cases import Case, case_key


def grid(**overrides):
    defaults = dict(
        thresholds=((40.0,), (30.0, 50.0)),
        loads=(0.2, 0.4),
        fan_ins=(0, 8),
        scenarios=("buildup",),
        seeds=(1, 2),
    )
    defaults.update(overrides)
    return CampaignGrid(**defaults)


class TestExpansion:
    def test_counts(self):
        g = grid()
        assert g.n_cells == 2 * 1 * 2 * 2
        assert g.n_cases == g.n_cells * 2
        assert len(g.expand()) == g.n_cases
        assert len(list(g.coords())) == g.n_cells

    def test_seeds_innermost(self):
        cases = grid().expand()
        # Consecutive cases differ only in seed within one cell block.
        assert cases[0].params["seed"] == 1
        assert cases[1].params["seed"] == 2
        first = dict(cases[0].params)
        second = dict(cases[1].params)
        first.pop("seed")
        second.pop("seed")
        assert first == second

    def test_expansion_order_is_nested_iteration(self):
        g = grid(scenarios=("buildup", "incast"))
        coords = list(g.coords())
        expected = [
            CellCoord(tuple(t), s, l, f)
            for t in g.thresholds
            for s in g.scenarios
            for l in g.loads
            for f in g.fan_ins
        ]
        assert coords == expected

    def test_labels_readable(self):
        labels = [case.label for case in grid().expand()]
        assert labels[0] == "K=40/buildup/load=0.2/fan=0/seed=1"
        assert "K1=30,K2=50" in labels[-1]
        assert len(set(labels)) == len(labels)

    def test_params_json_serialisable(self):
        for case in grid().expand():
            round_trip = json.loads(json.dumps(case.params))
            assert round_trip == case.params

    def test_threshold_label(self):
        assert threshold_label((40.0,)) == "K=40"
        assert threshold_label((30.0, 50.0)) == "K1=30,K2=50"
        assert CellCoord((65.0,), "buildup", 0.2, 0).protocol == "K=65"


class TestCacheKeyStability:
    def test_two_expansions_key_identical(self):
        """Equal grids expand to key-identical cases, whatever object
        built them — this is what makes warm campaign re-runs all-hit."""
        keys_a = [case_key(c) for c in grid().expand()]
        keys_b = [case_key(c) for c in grid().expand()]
        assert keys_a == keys_b
        assert len(set(keys_a)) == len(keys_a)

    def test_label_not_in_key(self):
        case = grid().expand()[0]
        relabelled = Case(
            experiment=case.experiment,
            label="something-else-entirely",
            params=case.params,
        )
        assert case_key(case) == case_key(relabelled)

    def test_any_param_change_changes_key(self):
        base = case_key(grid().expand()[0])
        for overrides in (
            dict(seeds=(3, 4)),
            dict(loads=(0.3, 0.4)),
            dict(thresholds=((41.0,), (30.0, 50.0))),
            dict(duration=0.05),
            dict(n_spines=3),
        ):
            assert case_key(grid(**overrides).expand()[0]) != base


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        dict(thresholds=()),
        dict(thresholds=((50.0, 30.0),)),          # K1 >= K2
        dict(thresholds=((30.0, 30.0),)),
        dict(thresholds=((-5.0,),)),
        dict(thresholds=((10.0, 20.0, 30.0),)),    # arity
        dict(loads=()),
        dict(loads=(0.0,)),
        dict(fan_ins=()),
        dict(fan_ins=(-1,)),
        dict(scenarios=("steady",)),
        dict(seeds=()),
        dict(seeds=(1, 1)),
        dict(n_leaves=1),
        dict(warmup=0.05, duration=0.04),
    ])
    def test_rejected(self, overrides):
        with pytest.raises(ValueError):
            grid(**overrides)

    def test_scenarios_registry(self):
        assert SCENARIOS == ("buildup", "incast", "space-dc")
        assert SENDERS == ("dctcp", "cubic")


class TestSenderAxis:
    def test_senders_zip_pair_with_thresholds(self):
        g = grid(
            thresholds=((65.0,), (50.0, 80.0), (65.0,)),
            senders=("dctcp", "dctcp", "cubic"),
        )
        coords = list(g.coords())
        assert [c.sender for c in coords[:: g.n_cells // 3]] == [
            "dctcp", "dctcp", "cubic",
        ]
        # 3 threshold configs ZIPPED with senders, not crossed.
        assert g.n_cells == 3 * 1 * 2 * 2

    def test_protocol_label(self):
        assert CellCoord((65.0,), "space-dc", 0.1, 2).protocol == "K=65"
        assert (
            CellCoord((65.0,), "space-dc", 0.1, 2, sender="cubic").protocol
            == "CUBIC"
        )

    @pytest.mark.parametrize("overrides", [
        dict(senders=("dctcp",)),                  # length mismatch
        dict(senders=("dctcp", "reno")),           # unknown sender
    ])
    def test_rejected(self, overrides):
        with pytest.raises(ValueError):
            grid(**overrides)


class TestChaosKnobs:
    @pytest.mark.parametrize("overrides", [
        dict(jitter_s=-1e-3),
        dict(flap_count=-1),
        dict(flap_down=2.0, flap_period=2.0, flap_count=1),
        dict(flap_down=0.0, flap_period=2.0, flap_count=1),
    ])
    def test_rejected(self, overrides):
        with pytest.raises(ValueError):
            grid(**overrides)

    def test_flap_geometry_unchecked_when_train_disabled(self):
        # flap_count=0 disables the train, so its geometry is free.
        assert grid(flap_count=0, flap_down=9.0, flap_period=2.0)


class TestCacheKeyCompat:
    """New optional axes must not disturb pre-existing cache keys."""

    #: The exact parameter set every pre-chaos grid produced; a default
    #: (DCTCP, non-chaos, no-invariants) cell must still produce exactly
    #: this, or every historic content-addressed cache entry goes cold.
    HISTORIC_KEYS = {
        "thresholds", "scenario", "load", "fan_in", "seed",
        "n_leaves", "n_spines", "hosts_per_leaf",
        "host_bandwidth_bps", "fabric_bandwidth_bps",
        "per_hop_delay", "fabric_buffer_bytes",
        "flow_bytes", "incast_bytes_per_flow", "duration", "warmup",
    }

    def test_default_cells_keep_historic_param_set(self):
        for case in grid(scenarios=("buildup", "incast")).expand():
            assert set(case.params) == self.HISTORIC_KEYS

    def test_space_dc_cells_add_only_chaos_knobs(self):
        for case in grid(scenarios=("space-dc",)).expand():
            assert set(case.params) == self.HISTORIC_KEYS | {
                "jitter_s", "flap_period", "flap_down", "flap_count",
            }

    def test_cubic_cells_add_only_sender(self):
        g = grid(senders=("dctcp", "cubic"))
        dctcp_block = g.expand()[: g.n_cases // 2]
        cubic_block = g.expand()[g.n_cases // 2 :]
        for case in dctcp_block:
            assert "sender" not in case.params
        for case in cubic_block:
            assert case.params["sender"] == "cubic"
            assert set(case.params) == self.HISTORIC_KEYS | {"sender"}

    def test_invariants_opt_in_changes_keys(self):
        base = case_key(grid().expand()[0])
        audited = case_key(grid(invariants=True).expand()[0])
        assert audited != base
        assert grid(invariants=True).expand()[0].params["invariants"] is True

    def test_chaos_knobs_enter_key_only_for_space_dc(self):
        # Changing a chaos knob re-keys space-dc cells but must leave
        # buildup/incast cells untouched (the knob does not apply).
        base = case_key(grid().expand()[0])
        assert case_key(grid(jitter_s=5e-3).expand()[0]) == base
        space = case_key(grid(scenarios=("space-dc",)).expand()[0])
        assert (
            case_key(grid(scenarios=("space-dc",), jitter_s=5e-3).expand()[0])
            != space
        )
