"""Campaign driver end-to-end: determinism, caching, resume, censoring."""

import pytest

from repro.campaign.aggregate import FctAggregate, aggregate_fcts
from repro.campaign.driver import run_campaign
from repro.campaign.grid import CampaignGrid
from repro.exec.cache import ResultCache
from repro.exec.cases import case_key
from repro.exec.executor import SweepExecutor


def tiny_grid(**overrides):
    """Two seeds of one cell: small enough to run inline in a test."""
    defaults = dict(
        thresholds=((40.0,),),
        loads=(0.2,),
        fan_ins=(0,),
        scenarios=("buildup",),
        seeds=(1, 2),
        n_leaves=2,
        n_spines=1,
        hosts_per_leaf=1,
        duration=0.004,
        warmup=0.001,
    )
    defaults.update(overrides)
    return CampaignGrid(**defaults)


class TestAggregateFcts:
    def test_exact_percentiles_when_uncensored(self):
        fcts = [float(i) for i in range(1, 101)]
        agg = aggregate_fcts(fcts, n_started=100)
        assert agg.n_incomplete == 0
        assert agg.censoring_rate == 0.0
        assert agg.percentiles["50"] == pytest.approx(50.5)
        assert agg.percentiles["99"] == pytest.approx(99.01)
        assert not any(agg.lower_bound.values())
        assert agg.mean == pytest.approx(50.5)

    def test_censoring_flags_unidentifiable_percentiles(self):
        # 10 of 100 flows censored: p50 is exact, p95/p99 only bounds.
        fcts = [float(i) for i in range(1, 91)]
        agg = aggregate_fcts(fcts, n_started=100)
        assert agg.censoring_rate == pytest.approx(0.1)
        assert not agg.lower_bound["50"]
        assert agg.lower_bound["95"]
        assert agg.lower_bound["99"]

    def test_boundary_exactly_identifiable(self):
        # 1% censored: p99 sits exactly on the uncensored boundary and
        # stays identifiable; anything above it does not.
        agg = aggregate_fcts(
            [1.0] * 99, n_started=100, percentiles=(99.0, 99.5)
        )
        assert not agg.lower_bound["99"]
        assert agg.lower_bound["99.5"]

    def test_everything_censored(self):
        agg = aggregate_fcts([], n_started=5)
        assert agg.n_completed == 0
        assert agg.censoring_rate == 1.0
        assert agg.mean is None
        assert all(v is None for v in agg.percentiles.values())
        assert all(agg.lower_bound.values())

    def test_empty_cell(self):
        agg = aggregate_fcts([], n_started=0)
        assert agg.censoring_rate == 0.0
        assert all(v is None for v in agg.percentiles.values())
        assert not any(agg.lower_bound.values())

    def test_started_fewer_than_completed_raises(self):
        with pytest.raises(ValueError):
            aggregate_fcts([1.0, 2.0], n_started=1)

    def test_describe_marks_lower_bounds(self):
        agg = FctAggregate(
            n_started=10, n_completed=9, n_incomplete=1,
            censoring_rate=0.1, mean=2e-3,
            percentiles={"50": 1e-3, "99": 3.1e-3},
            lower_bound={"50": False, "99": True},
        )
        assert agg.describe("50") == "1.000ms"
        assert agg.describe("99") == ">=3.100ms"
        none = FctAggregate(
            n_started=1, n_completed=0, n_incomplete=1,
            censoring_rate=1.0, mean=None,
            percentiles={"50": None}, lower_bound={"50": True},
        )
        assert none.describe("50") == "n/a"


class TestRunCampaign:
    def test_inline_run_shape_and_censoring_accounting(self):
        grid = tiny_grid()
        result = run_campaign(grid)
        assert len(result.cells) == grid.n_cells == 1
        assert result.complete
        cell = result.cells[0]
        assert cell.missing_seeds == ()
        fct = cell.fct
        # Every launched flow is accounted for: completed + censored.
        assert fct.n_started == fct.n_completed + fct.n_incomplete
        assert fct.n_started > 0
        assert fct.percentiles["50"] is not None
        rows = result.table_rows()
        assert len(rows) == 1 and rows[0][0] == "K=40"

    def test_inline_rerun_identical(self):
        a = run_campaign(tiny_grid())
        b = run_campaign(tiny_grid())
        assert a.to_dict() == b.to_dict()

    def test_invariants_audit_runs_clean_and_read_only(self):
        # The in-cell watchdog must neither raise nor change a single
        # aggregate (it only reads ledgers; only the cache key differs).
        plain = run_campaign(tiny_grid()).cells[0]
        audited = run_campaign(tiny_grid(invariants=True)).cells[0]
        assert audited.fct == plain.fct
        assert audited.mean_queue_pkts == plain.mean_queue_pkts
        assert audited.std_queue_pkts == plain.std_queue_pkts


class TestExecutorIntegration:
    def test_warm_rerun_all_hits_and_identical(self, tmp_path):
        grid = tiny_grid()
        cold = SweepExecutor(cache=ResultCache(tmp_path / "cache"))
        first = run_campaign(grid, cold)
        stats = cold.report.stages[-1]
        assert stats.executed == grid.n_cases
        assert stats.cache_hits == 0

        warm = SweepExecutor(cache=ResultCache(tmp_path / "cache"))
        second = run_campaign(grid, warm)
        stats = warm.report.stages[-1]
        assert stats.cache_hits == grid.n_cases
        assert stats.executed == 0
        assert first.to_dict() == second.to_dict()

    def test_resume_reexecutes_only_missing_cell(self, tmp_path):
        """Checkpoint-resume: evict one seed's cache entry; the re-run
        must execute exactly that case and rebuild identical results."""
        grid = tiny_grid()
        cache = ResultCache(tmp_path / "cache")
        baseline = run_campaign(grid, SweepExecutor(cache=cache))

        victim = grid.expand()[0]
        key = case_key(victim)
        entry = cache.root / key[:2] / f"{key}.json"
        assert entry.is_file()
        entry.unlink()

        resumed = SweepExecutor(cache=ResultCache(tmp_path / "cache"))
        result = run_campaign(grid, resumed)
        stats = resumed.report.stages[-1]
        assert stats.executed == 1
        assert stats.cache_hits == grid.n_cases - 1
        assert result.to_dict() == baseline.to_dict()

    def test_skip_policy_reports_missing_seed(self, tmp_path):
        """A cell whose case result is a skip hole still aggregates the
        landed seeds and names the missing one."""
        import repro.campaign.driver as driver_mod

        grid = tiny_grid()
        cases = grid.expand()
        raw = [driver_mod.execute_cases([c], None)[0] for c in cases]
        raw[1] = None  # seed 2 failed and was skipped

        real_execute = driver_mod.execute_cases
        try:
            driver_mod.execute_cases = lambda cases, ex, stage="": raw
            result = run_campaign(grid)
        finally:
            driver_mod.execute_cases = real_execute

        cell = result.cells[0]
        assert cell.missing_seeds == (2,)
        assert not cell.complete
        assert not result.complete
        assert cell.fct.n_started > 0  # seed 1 still aggregated
        assert "seed(s) missing" in result.table_rows()[0][4]

    def test_pre_chaos_cached_payloads_still_aggregate(self):
        """Cache entries written before the chaos PR lack the new result
        keys; they must aggregate as zeros, not KeyError."""
        import repro.campaign.driver as driver_mod

        grid = tiny_grid()
        raw = [driver_mod.execute_cases([c], None)[0] for c in grid.expand()]
        for result in raw:
            del result["std_queue_pkts"]
            del result["chaos_drops"]

        real_execute = driver_mod.execute_cases
        try:
            driver_mod.execute_cases = lambda cases, ex, stage="": raw
            result = run_campaign(grid)
        finally:
            driver_mod.execute_cases = real_execute

        cell = result.cells[0]
        assert cell.complete
        assert cell.std_queue_pkts == 0.0
        assert cell.chaos_drops == 0


def space_dc_grid(**overrides):
    """One miniature space-DC cell: wide-area RTT, jitter, one flap.

    Scaled so the whole thing runs inline in a test — per-hop delay in
    the hundreds of microseconds instead of 25 ms, one 2 ms flap inside
    a 40 ms window.
    """
    defaults = dict(
        thresholds=((40.0,),),
        loads=(0.2,),
        fan_ins=(1,),
        scenarios=("space-dc",),
        seeds=(1,),
        n_leaves=2,
        n_spines=1,
        hosts_per_leaf=1,
        host_bandwidth_bps=1e9,
        fabric_bandwidth_bps=4e9,
        per_hop_delay=200e-6,
        duration=0.04,
        warmup=0.004,
        jitter_s=100e-6,
        flap_period=0.02,
        flap_down=0.002,
        flap_count=1,
    )
    defaults.update(overrides)
    return CampaignGrid(**defaults)


class TestSpaceDcCells:
    def test_chaos_cell_runs_and_reports_drops(self):
        result = run_campaign(space_dc_grid())
        cell = result.cells[0]
        assert cell.complete
        assert cell.fct.n_started > 0
        # The flap train really cut traffic: the fault layer consumed
        # packets, and the run survived to aggregate anyway.
        assert cell.chaos_drops > 0
        assert cell.std_queue_pkts >= 0.0

    def test_chaos_cell_rerun_identical(self):
        a = run_campaign(space_dc_grid())
        b = run_campaign(space_dc_grid())
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_the_chaos_realisation(self):
        a = run_campaign(space_dc_grid()).cells[0]
        b = run_campaign(space_dc_grid(seeds=(2,))).cells[0]
        assert (a.chaos_drops, a.fct.n_started) != (
            b.chaos_drops, b.fct.n_started,
        )

    def test_cubic_comparison_row(self):
        result = run_campaign(
            space_dc_grid(
                thresholds=((40.0,), (40.0,)),
                senders=("dctcp", "cubic"),
            )
        )
        rows = result.table_rows()
        assert [row[0] for row in rows] == ["K=40", "CUBIC"]
        assert all(len(row) == 12 for row in rows)

    def test_slowdown_normalises_by_base_fct(self):
        grid = space_dc_grid()
        result = run_campaign(grid)
        cell = result.cells[0]
        base_fct = (
            8.0 * grid.per_hop_delay
            + grid.flow_bytes * 8.0 / grid.host_bandwidth_bps
        )
        p50, slow50 = cell.fct.percentiles["50"], (
            cell.fct_slowdown.percentiles["50"]
        )
        if p50 is not None:
            assert slow50 == pytest.approx(p50 / base_fct)
            assert slow50 >= 1.0  # no flow beats the unloaded ideal
