"""Hypothesis properties for the result cache under damage.

The cache's hardening claim is a round-trip property plus a safety
property: any stored result comes back exactly, and *no* byte-level
damage to an entry — truncation at an arbitrary point (a torn write) or
wholesale garbage — can make ``get`` raise, return a wrong result, or
leave the damaged file in the store.  Damage is always detected,
quarantined, and reported as a miss.
"""

import tempfile
from pathlib import Path

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.exec.cache import ResultCache
from repro.exec.cases import Case, case_key

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

results = st.dictionaries(
    st.text(max_size=10),
    st.one_of(
        json_scalars,
        st.lists(json_scalars, max_size=4),
        st.dictionaries(st.text(max_size=5), json_scalars, max_size=3),
    ),
    max_size=6,
)


def make_case(i=0):
    return Case(experiment="tests.executor.stub_experiment",
                label=f"p{i}", params={"x": i})


@settings(max_examples=60, deadline=None)
@given(result=results)
def test_round_trip_is_exact(result):
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(Path(root))
        case = make_case()
        cache.put(case, result)
        assert cache.get(case) == result
        assert (cache.hits, cache.misses, cache.corrupt) == (1, 0, 0)


@settings(max_examples=60, deadline=None)
@given(result=results, data=st.data())
def test_truncation_is_quarantined_never_fatal(result, data):
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(Path(root))
        case = make_case()
        cache.put(case, result)
        path = cache._path(case_key(case))
        raw = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        path.write_bytes(raw[:cut])

        assert cache.get(case) is None  # never raises, never lies
        assert cache.corrupt == 1
        assert not path.exists()
        assert len(list(cache.quarantine_root.iterdir())) == 1
        # The store self-heals: rewrite, and the entry reads back.
        cache.put(case, result)
        assert cache.get(case) == result


@settings(max_examples=60, deadline=None)
@given(result=results, garbage=st.binary(min_size=0, max_size=64))
def test_garbage_bytes_are_quarantined_never_fatal(result, garbage):
    import json

    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(Path(root))
        case = make_case()
        cache.put(case, result)
        path = cache._path(case_key(case))
        assume(garbage != path.read_bytes())
        path.write_bytes(garbage)

        # Garbage that happens to parse as a schema-less JSON object is
        # indistinguishable from a legacy pre-versioning entry: it is
        # orphaned as stale (left in place), not quarantined.
        try:
            parsed = json.loads(garbage.decode("utf-8"))
            looks_legacy = isinstance(parsed, dict) and "schema" not in parsed
        except (ValueError, UnicodeDecodeError):
            looks_legacy = False

        assert cache.get(case) is None  # never raises, never lies
        if looks_legacy:
            assert cache.stale == 1
            assert path.exists()
        else:
            assert cache.corrupt == 1
            assert not path.exists()
            quarantined = list(cache.quarantine_root.iterdir())
            assert len(quarantined) == 1
            assert quarantined[0].read_bytes() == garbage  # evidence intact
