"""Property-based tests for the linearised plant and the margins."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.margins import classical_margins, worst_case_amplitude
from repro.core.parameters import (
    DoubleThresholdParams,
    NetworkParams,
    SingleThresholdParams,
)
from repro.core.transfer_function import (
    dc_gain,
    open_loop,
    plant,
    plant_poles,
    plant_rational_coefficients,
    plant_zero,
)


@st.composite
def networks(draw):
    capacity = draw(st.floats(min_value=1e4, max_value=1e7))
    n_flows = draw(st.integers(min_value=1, max_value=200))
    rtt = draw(st.floats(min_value=1e-5, max_value=1e-2))
    g = draw(st.floats(min_value=1 / 64, max_value=0.9))
    return NetworkParams(capacity=capacity, n_flows=n_flows, rtt=rtt, g=g)


class TestPlantProperties:
    @given(net=networks())
    @settings(max_examples=100)
    def test_poles_and_zero_positive(self, net):
        assert all(p > 0 for p in plant_poles(net))
        assert plant_zero(net) > 0

    @given(net=networks())
    @settings(max_examples=100)
    def test_dc_gain_positive_and_matches_evaluation(self, net):
        value = complex(plant(0.0, net))
        assert value.imag == 0.0
        assert value.real > 0.0
        assert np.isclose(value.real, dc_gain(net), rtol=1e-9)

    @given(net=networks(), w=st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=150)
    def test_delay_preserves_magnitude(self, net, w):
        assert np.isclose(
            abs(complex(open_loop(w, net))),
            abs(complex(plant(1j * w, net))),
            rtol=1e-9,
        )

    @given(net=networks(), w=st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=100)
    def test_conjugate_symmetry(self, net, w):
        """G(-jw) = conj(G(jw)): the loop is a real system."""
        plus = complex(plant(1j * w, net))
        minus = complex(plant(-1j * w, net))
        assert np.isclose(minus.real, plus.real, rtol=1e-9)
        assert np.isclose(minus.imag, -plus.imag, rtol=1e-9)

    @given(net=networks())
    @settings(max_examples=50)
    def test_rational_form_consistent(self, net):
        num, den = plant_rational_coefficients(net)
        for w in (10.0, 1e3, 1e5):
            s = 1j * w
            direct = complex(plant(s, net))
            rational = complex(np.polyval(num, s) / np.polyval(den, s))
            assert np.isclose(rational, direct, rtol=1e-6)

    @given(net=networks())
    @settings(max_examples=100)
    def test_magnitude_rolls_off(self, net):
        low = abs(complex(plant(1j * 1.0, net)))
        high = abs(complex(plant(1j * 1e8, net)))
        assert high < low


@st.composite
def threshold_params(draw):
    if draw(st.booleans()):
        return SingleThresholdParams(
            k=draw(st.floats(min_value=1.0, max_value=200.0))
        )
    k1 = draw(st.floats(min_value=1.0, max_value=100.0))
    gap = draw(st.floats(min_value=0.1, max_value=100.0))
    return DoubleThresholdParams(k1=k1, k2=k1 + gap)


class TestMarginProperties:
    @given(params=threshold_params())
    @settings(max_examples=40, deadline=None)
    def test_worst_case_amplitude_in_domain(self, params):
        x = worst_case_amplitude(params, n_grid=512)
        edge = params.k if isinstance(params, SingleThresholdParams) else params.k2
        assert x >= edge

    @given(
        params=threshold_params(),
        scale=st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_gain_margin_inverse_in_scale(self, params, scale):
        from repro.core.parameters import paper_network

        net = paper_network(30)
        base = classical_margins(net, params, loop_gain_scale=1.0,
                                 n_grid=20000)
        scaled = classical_margins(net, params, loop_gain_scale=scale,
                                   n_grid=20000)
        if np.isfinite(base.gain_margin) and np.isfinite(scaled.gain_margin):
            assert np.isclose(
                scaled.gain_margin * scale, base.gain_margin, rtol=1e-3
            )
