"""Property-based tests for routing over random tree topologies.

Any host must be able to reach any other host across an arbitrary tree
of switches — the structural guarantee both paper topologies (a star
and a two-level tree) rely on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue
from repro.sim.topology import Network


class Recorder:
    def __init__(self):
        self.packets = []

    def on_packet(self, packet):
        self.packets.append(packet)


@st.composite
def random_trees(draw):
    """A random tree: switches form the spine, hosts hang off switches."""
    n_switches = draw(st.integers(min_value=1, max_value=6))
    n_hosts = draw(st.integers(min_value=2, max_value=8))
    # parent[i] < i makes an arbitrary switch tree.
    switch_parents = [
        draw(st.integers(min_value=0, max_value=i - 1)) if i > 0 else None
        for i in range(n_switches)
    ]
    host_attach = [
        draw(st.integers(min_value=0, max_value=n_switches - 1))
        for _ in range(n_hosts)
    ]
    return switch_parents, host_attach


def build(switch_parents, host_attach):
    net = Network()
    switches = []
    for i, parent in enumerate(switch_parents):
        switch = net.add_switch(f"s{i}")
        switches.append(switch)
        if parent is not None:
            net.connect(
                switch, switches[parent], 1e9, 1e-6,
                FifoQueue(1e7), FifoQueue(1e7),
            )
    hosts = []
    for i, attach in enumerate(host_attach):
        host = net.add_host(f"h{i}")
        hosts.append(host)
        net.connect(
            host, switches[attach], 1e9, 1e-6, FifoQueue(1e7), FifoQueue(1e7)
        )
    net.finalize_routes()
    return net, switches, hosts


class TestRandomTreeRouting:
    @given(tree=random_trees())
    @settings(max_examples=40, deadline=None)
    def test_all_pairs_reachable(self, tree):
        net, _, hosts = build(*tree)
        receivers = {}
        flow_id = 1
        sent = 0
        for src in hosts:
            for dst in hosts:
                if src is dst:
                    continue
                rec = Recorder()
                dst.register_endpoint(flow_id, rec)
                receivers[flow_id] = (rec, dst)
                src.send(
                    Packet(flow_id=flow_id, src=src.node_id,
                           dst=dst.node_id, seq=0, size_bytes=100)
                )
                sent += 1
                flow_id += 1
        net.sim.run()
        delivered = sum(
            len(rec.packets) for rec, _ in receivers.values()
        )
        assert delivered == sent

    @given(tree=random_trees())
    @settings(max_examples=25, deadline=None)
    def test_no_switch_reports_unroutable(self, tree):
        net, switches, hosts = build(*tree)
        rec = Recorder()
        hosts[-1].register_endpoint(5, rec)
        hosts[0].send(
            Packet(flow_id=5, src=hosts[0].node_id,
                   dst=hosts[-1].node_id, seq=0, size_bytes=100)
        )
        net.sim.run()
        assert all(s.packets_unroutable == 0 for s in switches)

    @given(tree=random_trees())
    @settings(max_examples=25, deadline=None)
    def test_forwarding_is_loop_free(self, tree):
        """On a tree, a packet crosses each switch at most once: total
        forwarding events are bounded by the switch count."""
        net, switches, hosts = build(*tree)
        rec = Recorder()
        hosts[-1].register_endpoint(7, rec)
        hosts[0].send(
            Packet(flow_id=7, src=hosts[0].node_id,
                   dst=hosts[-1].node_id, seq=0, size_bytes=100)
        )
        net.sim.run()
        total_forwards = sum(s.packets_forwarded for s in switches)
        assert total_forwards <= len(switches)
