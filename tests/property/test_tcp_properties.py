"""Property-based tests for the transport layer.

The crown jewel: **eventual completion under arbitrary loss**.  Whatever
subset of data packets the network drops (each sequence at most once per
transmission attempt here — the queue re-admits retransmissions), TCP's
recovery machinery (dupacks, NewReno partial ACKs, go-back-N RTO with
backoff) must deliver the full byte stream, exactly once, in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.queues import FifoQueue
from repro.sim.tcp.flow import open_flow
from repro.sim.tcp.sender import DctcpSender
from repro.sim.topology import Network


class OneShotLossQueue(FifoQueue):
    """Drops each (seq, attempt) in the loss plan exactly once."""

    def __init__(self, *args, drop_plan=None, **kwargs):
        super().__init__(*args, **kwargs)
        # seq -> number of consecutive transmissions of it to drop
        self.drop_plan = dict(drop_plan or {})

    def enqueue(self, packet):
        if not packet.is_ack:
            remaining = self.drop_plan.get(packet.seq, 0)
            if remaining > 0:
                self.drop_plan[packet.seq] = remaining - 1
                self.stats.dropped += 1
                return False
        return super().enqueue(packet)


def run_transfer(total, drop_plan, min_rto=0.05):
    net = Network()
    a, b = net.add_host("a"), net.add_host("b")
    fq = OneShotLossQueue(10e6, drop_plan=drop_plan)
    net.connect(a, b, 1e9, 20e-6, fq, FifoQueue(10e6))
    net.finalize_routes()
    done = []
    # Tight RTO bounds keep worst-case backoff chains (Karn's rule can
    # starve RTT samples under adversarial loss) inside the horizon.
    flow = open_flow(
        a, b, DctcpSender, total_packets=total, on_complete=done.append,
        min_rto=min_rto, max_rto=0.4, initial_rto=0.1,
    )
    flow.start()
    net.sim.run(until=120.0)
    return flow, done


@st.composite
def loss_plans(draw):
    total = draw(st.integers(min_value=1, max_value=60))
    n_lossy = draw(st.integers(min_value=0, max_value=min(total, 12)))
    seqs = draw(
        st.lists(
            st.integers(min_value=0, max_value=total - 1),
            min_size=n_lossy,
            max_size=n_lossy,
            unique=True,
        )
    )
    plan = {
        seq: draw(st.integers(min_value=1, max_value=3)) for seq in seqs
    }
    return total, plan


class TestEventualCompletion:
    @given(case=loss_plans())
    @settings(max_examples=40, deadline=None)
    def test_transfer_completes_under_any_loss_pattern(self, case):
        total, plan = case
        flow, done = run_transfer(total, plan)
        assert flow.completed, (
            f"transfer stuck: total={total} plan={plan} "
            f"hack={flow.sender.highest_ack} inflight={flow.sender.in_flight}"
        )
        assert len(done) == 1
        # Receiver got the entire stream, in order.
        assert flow.receiver.rcv_next == total

    @given(case=loss_plans())
    @settings(max_examples=25, deadline=None)
    def test_loss_free_runs_have_no_retransmissions(self, case):
        total, plan = case
        lossless_flow, _ = run_transfer(total, {})
        assert lossless_flow.sender.retransmits == 0
        assert lossless_flow.sender.timeouts == 0
        # Exactly `total` data packets crossed the wire.
        assert lossless_flow.sender.packets_sent == total

    @given(case=loss_plans())
    @settings(max_examples=25, deadline=None)
    def test_work_conservation_bound(self, case):
        """Retransmissions never exceed (drops + a go-back-N resend of
        what was in flight per timeout-ish event) - a loose but
        universal sanity bound: sent <= total + drops + rewind waste."""
        total, plan = case
        flow, _ = run_transfer(total, plan)
        drops = sum(plan.values())
        # Each drop forces at least one retransmission; rewinds may add
        # up to a window (bounded by total) per timeout.
        assert flow.sender.packets_sent <= total + drops + (
            flow.sender.timeouts + 1
        ) * total

    @given(
        case=loss_plans(),
        delack=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_completion_with_delayed_acks(self, case, delack):
        total, plan = case
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        fq = OneShotLossQueue(10e6, drop_plan=plan)
        net.connect(a, b, 1e9, 20e-6, fq, FifoQueue(10e6))
        net.finalize_routes()
        flow = open_flow(
            a, b, DctcpSender, total_packets=total, min_rto=0.05,
            max_rto=0.4, initial_rto=0.1, delayed_ack_factor=delack,
        )
        flow.start()
        net.sim.run(until=120.0)
        assert flow.completed
        assert flow.receiver.rcv_next == total
