"""Property-based tests for the marking state machines (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.marking import DoubleThresholdMarker, SingleThresholdMarker

queue_paths = st.lists(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


@st.composite
def dt_configs(draw):
    k1 = draw(st.floats(min_value=1.0, max_value=80.0))
    gap = draw(st.floats(min_value=0.0, max_value=80.0))
    deadband = draw(st.floats(min_value=0.0, max_value=5.0))
    return k1, k1 + gap, deadband


class TestSingleThresholdProperties:
    @given(k=st.floats(min_value=0.1, max_value=100.0), path=queue_paths)
    def test_decision_depends_only_on_current_sample(self, k, path):
        marker = SingleThresholdMarker.from_threshold(k)
        fresh_each_time = [
            SingleThresholdMarker.from_threshold(k).should_mark(q) for q in path
        ]
        sequential = [marker.should_mark(q) for q in path]
        assert fresh_each_time == sequential

    @given(k=st.floats(min_value=0.1, max_value=100.0), path=queue_paths)
    def test_marks_iff_at_or_above_threshold(self, k, path):
        marker = SingleThresholdMarker.from_threshold(k)
        for q in path:
            assert marker.should_mark(q) == (q >= k)


class TestDoubleThresholdInvariants:
    @given(config=dt_configs(), path=queue_paths)
    def test_never_marks_below_k1(self, config, path):
        k1, k2, deadband = config
        marker = DoubleThresholdMarker.from_thresholds(k1, k2, deadband=deadband)
        for q in path:
            marked = marker.should_mark(q)
            if q < k1:
                assert not marked

    @given(config=dt_configs(), path=queue_paths)
    def test_always_marks_at_or_above_k2(self, config, path):
        k1, k2, deadband = config
        marker = DoubleThresholdMarker.from_thresholds(k1, k2, deadband=deadband)
        for q in path:
            marked = marker.should_mark(q)
            if q >= k2:
                assert marked

    @given(config=dt_configs(), path=queue_paths)
    def test_determinism(self, config, path):
        k1, k2, deadband = config
        a = DoubleThresholdMarker.from_thresholds(k1, k2, deadband=deadband)
        b = DoubleThresholdMarker.from_thresholds(k1, k2, deadband=deadband)
        assert [a.should_mark(q) for q in path] == [
            b.should_mark(q) for q in path
        ]

    @given(config=dt_configs(), path=queue_paths)
    def test_reset_equals_fresh_instance(self, config, path):
        k1, k2, deadband = config
        used = DoubleThresholdMarker.from_thresholds(k1, k2, deadband=deadband)
        for q in path:
            used.should_mark(q)
        used.reset()
        fresh = DoubleThresholdMarker.from_thresholds(k1, k2, deadband=deadband)
        assert [used.should_mark(q) for q in path] == [
            fresh.should_mark(q) for q in path
        ]

    @given(config=dt_configs())
    @settings(max_examples=50)
    def test_monotone_rise_and_fall_bracket_thresholds(self, config):
        """On a slow monotone ramp the state flips exactly once each way,
        somewhere inside [K1, K2] (exact point depends on deadband)."""
        k1, k2, deadband = config
        marker = DoubleThresholdMarker.from_thresholds(k1, k2, deadband=deadband)
        step = max((k2 + 20.0) / 400.0, deadband / 2.0 + 1e-6)
        q = 0.0
        transitions_up = []
        prev = marker.should_mark(q)
        while q < k2 + 20.0:
            q += step
            now = marker.should_mark(q)
            if now != prev:
                transitions_up.append((q, now))
            prev = now
        assert len(transitions_up) == 1
        flip_q, flip_state = transitions_up[0]
        assert flip_state is True
        assert k1 <= flip_q <= max(k2, k1 + deadband + 2 * step)

        transitions_down = []
        while q > -step:
            q -= step
            now = marker.should_mark(max(q, 0.0))
            if now != prev:
                transitions_down.append((q, now))
            prev = now
        assert len(transitions_down) == 1
        assert transitions_down[0][1] is False
