"""Property-based tests for the statistics layer."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.summary import (
    mean,
    oscillation_amplitude,
    percentile,
    relative_to_baseline,
    std,
    tail_latency,
)
from repro.stats.timeseries import time_weighted_mean, time_weighted_std

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestSummaryProperties:
    @given(values=samples)
    def test_mean_within_bounds(self, values):
        assert min(values) - 1e-9 <= mean(values) <= max(values) + 1e-9

    @given(values=samples)
    def test_std_nonnegative(self, values):
        assert std(values) >= 0.0

    @given(values=samples, shift=st.floats(min_value=-1e5, max_value=1e5))
    def test_std_shift_invariant(self, values, shift):
        shifted = [v + shift for v in values]
        assert abs(std(values) - std(shifted)) < 1e-6 * max(1.0, std(values))

    @given(values=samples, q=st.floats(min_value=0, max_value=100))
    def test_percentile_within_bounds(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @given(values=samples)
    def test_percentile_monotone_in_q(self, values):
        ps = [percentile(values, q) for q in (5, 25, 50, 75, 95)]
        assert ps == sorted(ps)

    @given(values=samples)
    def test_tail_latency_ordered(self, values):
        p50, p95, p99 = tail_latency(values)
        assert p50 <= p95 <= p99

    @given(values=samples)
    def test_amplitude_at_most_half_range(self, values):
        amp = oscillation_amplitude(values)
        assert 0.0 <= amp <= (max(values) - min(values)) / 2.0 + 1e-9

    @given(values=samples, base=st.floats(min_value=0.1, max_value=1e5))
    def test_relative_round_trip(self, values, base):
        rel = relative_to_baseline(values, base)
        assert np.allclose(rel * base, values, rtol=1e-9, atol=1e-6)


@st.composite
def irregular_series(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=100.0),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    times = [0.0]
    for g in gaps:
        times.append(times[-1] + g)
    values = draw(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return times, values


class TestTimeWeightedProperties:
    @given(series=irregular_series())
    def test_mean_within_bounds(self, series):
        times, values = series
        m = time_weighted_mean(times, values)
        assert min(values) - 1e-9 <= m <= max(values) + 1e-9

    @given(series=irregular_series())
    def test_std_nonnegative(self, series):
        times, values = series
        assert time_weighted_std(times, values) >= 0.0

    @given(series=irregular_series(), c=st.floats(min_value=-100, max_value=100))
    def test_mean_affine_equivariance(self, series, c):
        times, values = series
        base = time_weighted_mean(times, values)
        shifted = time_weighted_mean(times, [v + c for v in values])
        assert shifted == np.float64(base) + np.float64(c) or abs(
            shifted - (base + c)
        ) < 1e-6 * max(1.0, abs(base + c))

    @given(series=irregular_series())
    def test_constant_signal_zero_std(self, series):
        times, _ = series
        values = [7.5] * len(times)
        assert time_weighted_std(times, values) < 1e-9
        assert abs(time_weighted_mean(times, values) - 7.5) < 1e-9
