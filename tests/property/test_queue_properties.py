"""Property-based tests for the queue disciplines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.marking import SingleThresholdMarker
from repro.sim.buffer_pool import SharedBufferPool
from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue


def pkt(size, seq):
    return Packet(flow_id=1, src=0, dst=1, seq=seq, size_bytes=size)


@st.composite
def op_sequences(draw):
    """Random interleavings of enqueues (with sizes) and dequeues."""
    n_ops = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for i in range(n_ops):
        if draw(st.booleans()):
            ops.append(("enq", draw(st.integers(min_value=40, max_value=1500))))
        else:
            ops.append(("deq", 0))
    return ops


class TestFifoInvariants:
    @given(ops=op_sequences(), capacity=st.integers(5000, 50000))
    @settings(max_examples=80)
    def test_byte_accounting_always_consistent(self, ops, capacity):
        q = FifoQueue(capacity)
        shadow = []
        for i, (op, size) in enumerate(ops):
            if op == "enq":
                if q.enqueue(pkt(size, i)):
                    shadow.append(size)
            else:
                out = q.dequeue()
                if shadow:
                    assert out is not None
                    assert out.size_bytes == shadow.pop(0)
                else:
                    assert out is None
            assert q.len_bytes == sum(shadow)
            assert q.len_packets == len(shadow)
            assert q.len_bytes <= capacity

    @given(ops=op_sequences(), capacity=st.integers(5000, 50000))
    @settings(max_examples=50)
    def test_fifo_order_preserved(self, ops, capacity):
        q = FifoQueue(capacity)
        admitted = []
        for i, (op, size) in enumerate(ops):
            if op == "enq":
                if q.enqueue(pkt(size, i)):
                    admitted.append(i)
        drained = []
        while True:
            out = q.dequeue()
            if out is None:
                break
            drained.append(out.seq)
        assert drained == admitted

    @given(ops=op_sequences())
    @settings(max_examples=50)
    def test_stats_balance(self, ops):
        q = FifoQueue(20000, marker=SingleThresholdMarker.from_threshold(3))
        for i, (op, size) in enumerate(ops):
            if op == "enq":
                q.enqueue(pkt(size, i))
            else:
                q.dequeue()
        s = q.stats
        assert s.enqueued == s.dequeued + q.len_packets
        assert s.bytes_in == s.bytes_out + q.len_bytes
        assert s.marked <= s.enqueued


class TestPooledInvariants:
    @given(ops=op_sequences())
    @settings(max_examples=50)
    def test_pool_usage_equals_sum_of_queues(self, ops):
        pool = SharedBufferPool(30000)
        qa = FifoQueue(30000, pool=pool)
        qb = FifoQueue(30000, pool=pool)
        for i, (op, size) in enumerate(ops):
            target = qa if i % 2 == 0 else qb
            if op == "enq":
                target.enqueue(pkt(size, i))
            else:
                target.dequeue()
            assert pool.used_bytes == qa.len_bytes + qb.len_bytes
            assert 0 <= pool.used_bytes <= pool.total_bytes
