"""Property-based tests for the describing functions (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.describing_function import (
    df_double_threshold,
    df_single_threshold,
    neg_inv_relative_df_double,
    neg_inv_relative_df_single,
    numeric_df_double,
    numeric_df_single,
    relative_df_double,
    relative_df_single,
)

thresholds = st.floats(min_value=1.0, max_value=200.0)
ratios = st.floats(min_value=1.001, max_value=50.0)


@st.composite
def threshold_pairs(draw):
    k1 = draw(st.floats(min_value=1.0, max_value=100.0))
    gap = draw(st.floats(min_value=0.0, max_value=100.0))
    return k1, k1 + gap


class TestSingleThresholdProperties:
    @given(k=thresholds, ratio=ratios)
    def test_real_and_nonnegative(self, k, ratio):
        value = df_single_threshold(ratio * k, k)
        assert value.imag == 0.0
        assert value.real >= 0.0

    @given(k=thresholds, ratio=ratios)
    def test_relative_df_bounded_by_one_over_pi(self, k, ratio):
        """max N0dc = 1/pi is the analytic landmark behind Theorem 1."""
        assert relative_df_single(ratio * k, k).real <= 1.0 / math.pi + 1e-12

    @given(k=thresholds, ratio=ratios)
    def test_neg_inv_left_of_minus_pi(self, k, ratio):
        assert neg_inv_relative_df_single(ratio * k, k).real <= -math.pi + 1e-9

    @given(k=thresholds)
    @settings(max_examples=25)
    def test_numeric_agrees_with_closed_form(self, k):
        for ratio in (1.1, 2.0, 8.0):
            x = ratio * k
            closed = df_single_threshold(x, k)
            numeric = numeric_df_single(x, k, n_samples=2048)
            assert abs(closed - numeric) < 5e-3 / k

    @given(k=thresholds, ratio=ratios)
    def test_scale_invariance(self, k, ratio):
        """N(cX, cK) = N(X, K)/c: the DF scales inversely with amplitude."""
        x = ratio * k
        c = 3.0
        assert df_single_threshold(c * x, c * k) == pytest.approx(
            df_single_threshold(x, k) / c, rel=1e-9
        )


class TestDoubleThresholdProperties:
    @given(pair=threshold_pairs(), ratio=ratios)
    def test_imaginary_part_nonnegative(self, pair, ratio):
        k1, k2 = pair
        value = df_double_threshold(ratio * k2, k1, k2)
        assert value.imag >= 0.0
        assert value.real >= 0.0

    @given(pair=threshold_pairs(), ratio=ratios)
    def test_imag_proportional_to_gap(self, pair, ratio):
        """Eq. 27: Im N_dt = (K2-K1)/(pi X^2) exactly."""
        k1, k2 = pair
        x = ratio * k2
        assert df_double_threshold(x, k1, k2).imag == pytest.approx(
            (k2 - k1) / (math.pi * x * x), rel=1e-9
        )

    @given(k=thresholds, ratio=ratios)
    def test_degenerates_to_single_threshold(self, k, ratio):
        x = ratio * k
        assert df_double_threshold(x, k, k) == pytest.approx(
            df_single_threshold(x, k), rel=1e-9, abs=1e-15
        )

    @given(pair=threshold_pairs(), ratio=ratios)
    def test_neg_inv_in_second_quadrant(self, pair, ratio):
        k1, k2 = pair
        if k2 == k1:
            return  # degenerate: purely real
        v = neg_inv_relative_df_double(ratio * k2, k1, k2)
        assert v.real < 0.0
        assert v.imag > 0.0

    @given(pair=threshold_pairs())
    @settings(max_examples=25)
    def test_numeric_agrees_with_closed_form(self, pair):
        k1, k2 = pair
        for ratio in (1.1, 2.0, 8.0):
            x = ratio * k2
            closed = df_double_threshold(x, k1, k2)
            numeric = numeric_df_double(x, k1, k2, n_samples=2048)
            assert abs(closed - numeric) < 5e-3 / k2

    @given(pair=threshold_pairs(), ratio=ratios)
    def test_relative_df_magnitude_bounded(self, pair, ratio):
        """|N0dt| <= K2 * (2/(pi X)) * ... stays below 2/pi + gap term."""
        k1, k2 = pair
        value = relative_df_double(ratio * k2, k1, k2)
        assert abs(value) <= 1.0  # loose but universal sanity bound


class TestPhaseOrdering:
    @given(pair=threshold_pairs(), ratio=ratios)
    def test_dt_never_lags_dc(self, pair, ratio):
        """DT-DCTCP's DF phase >= DCTCP's (0): hysteresis adds lead."""
        k1, k2 = pair
        x = ratio * k2
        dt_phase = math.atan2(
            df_double_threshold(x, k1, k2).imag,
            df_double_threshold(x, k1, k2).real,
        )
        assert dt_phase >= 0.0
