"""Property-based tests for the DES kernel and the delay buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid.delay_buffer import DelayBuffer
from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=100,
)


class TestEventOrdering:
    @given(delays=delays)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=delays)
    def test_equal_times_preserve_scheduling_order(self, delays):
        sim = Simulator()
        fired = []
        t = max(delays)
        for i, _ in enumerate(delays):
            sim.schedule(t, fired.append, i)
        sim.run()
        assert fired == list(range(len(delays)))

    @given(delays=delays, cancel_mask=st.data())
    def test_cancelled_subset_never_fires(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(d, fired.append, i) for i, d in enumerate(delays)
        ]
        to_cancel = cancel_mask.draw(
            st.sets(st.integers(min_value=0, max_value=len(delays) - 1))
        )
        for i in to_cancel:
            handles[i].cancel()
        sim.run()
        assert set(fired) == set(range(len(delays))) - to_cancel


@st.composite
def sample_paths(draw):
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                min_size=2,
                max_size=50,
                unique=True,
            )
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=len(times),
            max_size=len(times),
        )
    )
    return times, values


class TestDelayBufferProperties:
    @given(path=sample_paths(), query=st.floats(min_value=-10, max_value=1010))
    @settings(max_examples=200)
    def test_linear_lookup_within_value_bounds(self, path, query):
        times, values = path
        buf = DelayBuffer(times[0], values[0])
        for t, v in zip(times[1:], values[1:]):
            buf.append(t, v)
        result = buf.value_at(query)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(path=sample_paths())
    def test_exact_lookup_at_sample_times(self, path):
        times, values = path
        buf = DelayBuffer(times[0], values[0])
        for t, v in zip(times[1:], values[1:]):
            buf.append(t, v)
        for t, v in zip(times, values):
            assert buf.value_at(t) == v

    @given(path=sample_paths(), cut=st.floats(min_value=0.0, max_value=1000.0))
    def test_trim_preserves_recent_lookups(self, path, cut):
        times, values = path
        full = DelayBuffer(times[0], values[0], interpolation="previous")
        trimmed = DelayBuffer(times[0], values[0], interpolation="previous")
        for t, v in zip(times[1:], values[1:]):
            full.append(t, v)
            trimmed.append(t, v)
        trimmed.trim_before(cut)
        for q in [cut, cut + 1.0, times[-1], times[-1] + 5.0]:
            if q >= cut:
                assert trimmed.value_at(q) == full.value_at(q)
