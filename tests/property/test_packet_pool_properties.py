"""Property-based tests for the Packet free-list pool.

The pooling contract (ISSUE 2): a recycled-then-reacquired packet is
indistinguishable from a freshly constructed one — every field,
including the mutable per-trip state (``ce``, ``ece``, ``sack_blocks``,
``sent_at``), re-initialised exactly as ``__init__`` would, with a
fresh ``uid``.  Directly constructed packets are never pooled, and a
double recycle must not corrupt the free list.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.packet import Packet, packet_pool_size

FIELDS = [s for s in Packet.__slots__ if s != "uid"]

packet_args = st.fixed_dictionaries(
    {
        "flow_id": st.integers(min_value=0, max_value=1000),
        "src": st.integers(min_value=0, max_value=64),
        "dst": st.integers(min_value=0, max_value=64),
        "seq": st.integers(min_value=-1, max_value=10**6),
        "size_bytes": st.integers(min_value=40, max_value=9000),
        "is_ack": st.booleans(),
        "ack_seq": st.integers(min_value=-1, max_value=10**6),
        "ecn_capable": st.booleans(),
    }
)


def _dirty(packet: Packet) -> None:
    """Simulate a full trip through the network: mutate per-trip state."""
    packet.ce = True
    packet.ece = True
    packet.sent_at = 123.456
    packet.is_retransmit = True
    packet.delayed_ack_count = 7
    packet.sack_blocks = ((3, 9), (12, 14))
    packet.deliver_at = 99.0


@given(args=packet_args)
@settings(max_examples=200)
def test_recycled_packet_reinitialised_exactly(args):
    first = Packet.acquire(**args)
    first_uid = first.uid
    _dirty(first)
    first.recycle()

    reacquired = Packet.acquire(**args)
    fresh = Packet(**args)
    try:
        for field in FIELDS:
            if field == "pooled":
                continue  # ownership flag: True on acquire, False on init
            assert getattr(reacquired, field) == getattr(fresh, field), field
        assert reacquired.pooled and not fresh.pooled
        # uid keeps counting, never repeats.
        assert reacquired.uid != first_uid
        assert fresh.uid == reacquired.uid + 1
    finally:
        reacquired.recycle()


@given(args=packet_args)
@settings(max_examples=50)
def test_acquire_reuses_the_recycled_object(args):
    packet = Packet.acquire(**args)
    packet.recycle()
    assert Packet.acquire(**args) is packet
    packet.recycle()


@given(args=packet_args)
@settings(max_examples=50)
def test_double_recycle_is_inert(args):
    packet = Packet.acquire(**args)
    packet.recycle()
    size_after_first = packet_pool_size()
    packet.recycle()
    assert packet_pool_size() == size_after_first
    # The free list must not hand the same object out twice.
    a = Packet.acquire(**args)
    b = Packet.acquire(**args)
    assert a is not b
    a.recycle()
    b.recycle()


@given(args=packet_args)
@settings(max_examples=50)
def test_directly_constructed_packets_never_pooled(args):
    packet = Packet(**args)
    before = packet_pool_size()
    packet.recycle()
    assert packet_pool_size() == before
    assert not packet.pooled
