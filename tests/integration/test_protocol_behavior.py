"""Integration tests: end-to-end protocol behaviour on the dumbbell.

These are the "does the reproduction behave like DCTCP" tests: queue
regulation near K, full link utilisation, approximate fairness, alpha
near the fluid operating point, and the DCTCP-vs-DT-DCTCP ordering.
"""

import numpy as np
import pytest

from repro.core.marking import (
    DoubleThresholdMarker,
    NullMarker,
    SingleThresholdMarker,
)
from repro.sim.apps.bulk import launch_bulk_flows
from repro.sim.topology import dumbbell
from repro.sim.tcp.sender import DctcpSender, EcnRenoSender, RenoSender
from repro.sim.trace import QueueMonitor

DURATION = 0.025
WARMUP = 0.01


def run_dumbbell(n, marker_factory, sender_cls=DctcpSender, **kwargs):
    nw = dumbbell(n, marker_factory, **kwargs)
    flows = launch_bulk_flows(nw, sender_cls=sender_cls)
    monitor = QueueMonitor(nw.sim, nw.bottleneck_queue, interval=10e-6)
    monitor.start()
    nw.sim.run(until=DURATION)
    return nw, flows, monitor.series(after=WARMUP)


class TestDctcpSteadyState:
    def test_queue_regulated_near_threshold(self):
        _, _, queue = run_dumbbell(
            4, lambda: SingleThresholdMarker.from_threshold(40)
        )
        assert 25.0 < queue.mean() < 55.0

    def test_full_utilisation(self):
        nw, flows, _ = run_dumbbell(
            4, lambda: SingleThresholdMarker.from_threshold(40)
        )
        delivered = sum(f.receiver.packets_received for f in flows)
        goodput = delivered * 1500 * 8 / DURATION
        assert goodput > 0.95 * 10e9

    def test_no_packet_drops_with_deep_buffer(self):
        nw, _, _ = run_dumbbell(
            4, lambda: SingleThresholdMarker.from_threshold(40)
        )
        assert nw.bottleneck_queue.stats.dropped == 0

    def test_approximate_fairness(self):
        _, flows, _ = run_dumbbell(
            4, lambda: SingleThresholdMarker.from_threshold(40)
        )
        shares = np.array([f.receiver.packets_received for f in flows], float)
        jain = shares.sum() ** 2 / (len(shares) * (shares**2).sum())
        assert jain > 0.9

    def test_alpha_near_fluid_operating_point(self):
        _, flows, _ = run_dumbbell(
            10, lambda: SingleThresholdMarker.from_threshold(40)
        )
        # alpha0 = sqrt(2/W0) with W0 = R0 C / N ~ 8.3 -> ~0.49.
        alphas = [f.sender.alpha for f in flows]
        assert np.mean(alphas) == pytest.approx(0.49, abs=0.2)

    def test_queue_oscillates_rather_than_converges(self):
        """The paper's starting observation: the relay forces a limit
        cycle, so the queue keeps crossing its threshold."""
        _, _, queue = run_dumbbell(
            10, lambda: SingleThresholdMarker.from_threshold(40)
        )
        crossings = np.sum(np.diff((queue >= 40).astype(int)) != 0)
        assert crossings > 10


class TestDtDctcpSteadyState:
    def test_queue_regulated_between_thresholds(self):
        _, _, queue = run_dumbbell(
            4,
            lambda: DoubleThresholdMarker.from_thresholds(30, 50, deadband=2),
        )
        assert 20.0 < queue.mean() < 55.0

    def test_full_utilisation(self):
        nw, flows, _ = run_dumbbell(
            4,
            lambda: DoubleThresholdMarker.from_thresholds(30, 50, deadband=2),
        )
        delivered = sum(f.receiver.packets_received for f in flows)
        assert delivered * 1500 * 8 / DURATION > 0.95 * 10e9

    def test_smaller_std_than_dctcp_at_n10(self):
        """Figure 11's claim at the N=10 point (packet level)."""
        _, _, q_dc = run_dumbbell(
            10, lambda: SingleThresholdMarker.from_threshold(40)
        )
        _, _, q_dt = run_dumbbell(
            10,
            lambda: DoubleThresholdMarker.from_thresholds(30, 50, deadband=2),
        )
        assert q_dt.std() < q_dc.std()


class TestBaselines:
    def test_reno_queue_excursions_dwarf_dctcp(self):
        """Loss-based TCP has no ECN brake: its queue repeatedly climbs
        to a large fraction of the buffer and drops packets, while DCTCP
        pins the queue near K without loss - the paper's motivation."""
        nw_reno, _, q_reno = run_dumbbell(
            4, lambda: NullMarker(), sender_cls=RenoSender,
            bottleneck_buffer_bytes=1.0 * 1024 * 1024,
        )
        nw_dctcp, _, q_dctcp = run_dumbbell(
            4, lambda: SingleThresholdMarker.from_threshold(40)
        )
        assert q_reno.max() > 3 * q_dctcp.max()
        assert q_reno.mean() > q_dctcp.mean()
        assert nw_reno.bottleneck_queue.stats.dropped > 0
        assert nw_dctcp.bottleneck_queue.stats.dropped == 0

    def test_ecn_reno_underutilises_at_low_threshold(self):
        """RFC 3168 halving at a shallow ECN threshold costs throughput;
        DCTCP's proportional cut keeps the link full - the core DCTCP
        value proposition the paper builds on."""
        nw_r, flows_r, _ = run_dumbbell(
            2, lambda: SingleThresholdMarker.from_threshold(40),
            sender_cls=EcnRenoSender,
        )
        nw_d, flows_d, _ = run_dumbbell(
            2, lambda: SingleThresholdMarker.from_threshold(40),
            sender_cls=DctcpSender,
        )
        goodput_r = sum(f.receiver.packets_received for f in flows_r)
        goodput_d = sum(f.receiver.packets_received for f in flows_d)
        assert goodput_d > goodput_r


class TestDelayedAcks:
    def test_transfer_completes_with_delack2(self):
        nw = dumbbell(2, lambda: SingleThresholdMarker.from_threshold(40))
        flows = launch_bulk_flows(nw, delayed_ack_factor=2)
        nw.sim.run(until=0.01)
        assert all(f.receiver.packets_received > 100 for f in flows)
        # Roughly half as many ACKs as packets.
        for f in flows:
            ratio = f.receiver.acks_sent / f.receiver.packets_received
            assert ratio < 0.75

    def test_queue_still_regulated_with_delack2(self):
        nw = dumbbell(4, lambda: SingleThresholdMarker.from_threshold(40))
        launch_bulk_flows(nw, delayed_ack_factor=2)
        monitor = QueueMonitor(nw.sim, nw.bottleneck_queue, interval=10e-6)
        monitor.start()
        nw.sim.run(until=DURATION)
        queue = monitor.series(after=WARMUP)
        assert 20.0 < queue.mean() < 70.0


class TestScaling:
    def test_oscillation_grows_with_flow_count(self):
        """Figure 1's observation, end to end (within the ECN-controlled
        regime; the N = 100 min-window regime needs longer horizons and
        is exercised by the Figure 1 experiment itself)."""
        _, _, q_small = run_dumbbell(
            10, lambda: SingleThresholdMarker.from_threshold(40)
        )
        _, _, q_large = run_dumbbell(
            40, lambda: SingleThresholdMarker.from_threshold(40)
        )
        assert q_large.std() > 1.5 * q_small.std()

    def test_determinism_across_runs(self):
        _, flows_a, q_a = run_dumbbell(
            3, lambda: SingleThresholdMarker.from_threshold(40)
        )
        _, flows_b, q_b = run_dumbbell(
            3, lambda: SingleThresholdMarker.from_threshold(40)
        )
        assert np.array_equal(q_a, q_b)
        assert [f.sender.packets_sent for f in flows_a] == [
            f.sender.packets_sent for f in flows_b
        ]
