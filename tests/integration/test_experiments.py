"""Integration tests for the experiment harness (one per paper figure).

Each test runs the figure's ``run()`` at a test-sized scale and asserts
the *qualitative claim* the paper makes for that figure.  The benchmark
suite runs the same code at larger scales.
"""

import math

import pytest

from repro.experiments import quick_scale
from repro.experiments.config import Scale
from repro.experiments import (
    fig01_oscillation,
    fig02_marking,
    fig04_criterion,
    fig06_08_df,
    fig07_nyquist_loci,
    fig09_critical_n,
    fig10_avg_queue,
    fig11_std_dev,
    fig12_alpha,
    fig14_incast,
    fig15_completion_time,
    fluid_validation,
)


def tiny_scale() -> Scale:
    return Scale(
        sim_duration=0.012,
        warmup=0.005,
        sample_interval=20e-6,
        flow_counts=(10, 40),
        n_queries=3,
        incast_flows=(16, 36),
        completion_flows=(16, 36),
        fluid_duration=0.03,
    )


class TestFig01:
    def test_large_n_oscillates_more(self):
        result = fig01_oscillation.run(tiny_scale(), n_small=10, n_large=40)
        assert result.amplitude_large > result.amplitude_small
        assert result.std_large > result.std_small
        assert result.amplitude_ratio > 1.0

    def test_traces_returned(self):
        result = fig01_oscillation.run(tiny_scale(), n_small=5, n_large=20)
        times, queue = result.trace_small
        assert len(times) == len(queue) > 100


class TestFig02:
    def test_marking_edges(self):
        dc, dt = fig02_marking.run()
        # DCTCP starts and stops at K on both slopes.
        assert dc.mark_start_level == pytest.approx(40.0, abs=1.0)
        assert dc.mark_stop_level == pytest.approx(40.0, abs=1.0)
        # DT-DCTCP starts at K1 rising and stops at K2 falling.
        assert dt.mark_start_level == pytest.approx(30.0, abs=1.0)
        assert dt.mark_stop_level == pytest.approx(50.0, abs=1.0)

    def test_dt_shifts_marking_earlier_at_equal_duty(self):
        """On a symmetric excursion with K1/K2 straddling K evenly, DT
        marks the *same fraction* of packets as DCTCP - just earlier on
        the way up and done earlier on the way down.  That is exactly
        the paper's 'K1 and K2 share the load of K'."""
        dc, dt = fig02_marking.run()
        assert dt.marked_fraction == pytest.approx(
            dc.marked_fraction, abs=0.02
        )
        assert dt.mark_start_level < dc.mark_start_level
        assert dt.mark_stop_level > dc.mark_stop_level


class TestFig04:
    def test_trichotomy(self):
        cases = fig04_criterion.run()
        classifications = [c.classification for c in cases]
        assert classifications[0] == "stable"
        assert "limit cycle" in classifications
        # Margins shrink as gain grows until intersection.
        assert cases[0].margin > cases[1].margin


class TestFig0608:
    def test_all_three_routes_agree(self):
        rows = fig06_08_df.run(amplitude_ratios=(1.1, 2.0), n_samples=2048)
        for row in rows:
            assert row.numeric_error < 1e-3
            assert row.marker_error < 1e-3

    def test_both_mechanisms_present(self):
        rows = fig06_08_df.run(amplitude_ratios=(1.5,), n_samples=1024)
        assert {r.mechanism for r in rows} == {"DCTCP", "DT-DCTCP"}


class TestFig07:
    def test_geometry_claims(self):
        dc, dt = fig07_nyquist_loci.run()
        # DCTCP: locus on the real axis, rightmost point at -pi.
        assert dc.df_rightmost.real == pytest.approx(-math.pi, rel=1e-3)
        assert dc.df_max_imag == pytest.approx(0.0, abs=1e-9)
        # DT-DCTCP: strictly positive imaginary part.
        assert dt.df_min_imag > 0.0
        assert dt.df_rightmost.imag > 0.0


class TestFig09:
    def test_dt_more_stable_at_every_n(self):
        result = fig09_critical_n.run(flow_counts=(10, 30, 50, 60, 80, 100))
        assert result.dt_margin_always_larger
        assert result.dc_critical_n is not None
        assert result.dt_critical_n is None

    def test_calibration_scale_plausible(self):
        result = fig09_critical_n.run(flow_counts=(10, 60))
        assert 4.0 < result.loop_gain_scale < 7.0


class TestFig10to12:
    @pytest.fixture(scope="class")
    def sweeps(self):
        scale = tiny_scale()
        return (
            fig10_avg_queue.run(scale),
            fig11_std_dev.run(scale),
            fig12_alpha.run(scale),
        )

    def test_fig10_baselines_sane(self, sweeps):
        sweep = sweeps[0]
        # Both protocols regulate near the 40-packet setpoint at N=10.
        assert 25 < sweep.baseline("DCTCP") < 60
        assert 25 < sweep.baseline("DT-DCTCP") < 60

    def test_fig11_std_grows_with_n(self, sweeps):
        sweep = sweeps[1]
        assert sweep.grows_with_n("DCTCP")

    def test_fig11_dt_mostly_not_worse(self, sweeps):
        assert sweeps[1].fraction_dt_not_worse() >= 0.5

    def test_fig12_alpha_grows_with_n(self, sweeps):
        sweep = sweeps[2]
        assert sweep.grows_with_n("DCTCP")
        assert sweep.grows_with_n("DT-DCTCP")

    def test_fig12_alpha_in_unit_interval(self, sweeps):
        for points in sweeps[2].points.values():
            for p in points:
                assert 0.0 <= p.mean_alpha <= 1.0


class TestFig14:
    def test_collapse_ordering(self):
        """DT-DCTCP postpones (or avoids) the collapse DCTCP suffers."""
        scale = tiny_scale()
        result = fig14_incast.run(scale, flow_counts=(16, 35, 36))
        dc = result.collapse_flows("DCTCP")
        dt = result.collapse_flows("DT-DCTCP")
        assert dc is not None
        assert dt is None or dt >= dc

    def test_precollapse_goodput_near_line_rate(self):
        scale = tiny_scale()
        result = fig14_incast.run(scale, flow_counts=(16,))
        for points in result.points.values():
            assert points[0].goodput_bps > 0.9e9


class TestFig15:
    def test_completion_time_jump_is_one_min_rto(self):
        scale = tiny_scale()
        result = fig15_completion_time.run(scale, flow_counts=(16, 36))
        dc = result.points["DCTCP"]
        # Pre-collapse ~ base time; post-collapse ~ +200 ms.
        assert dc[0].mean_time == pytest.approx(result.base_time, rel=0.3)
        assert dc[1].mean_time > 0.15
        # DT-DCTCP still fast at the fan-out where DCTCP collapsed.
        dt = result.points["DT-DCTCP"]
        assert dt[1].mean_time < dc[1].mean_time

    def test_percentiles_ordered(self):
        scale = tiny_scale()
        result = fig15_completion_time.run(scale, flow_counts=(16,))
        for points in result.points.values():
            p = points[0]
            assert p.median_time <= p.p95_time <= p.p99_time


class TestInvariantWatchdogOverExperiments:
    """The runtime watchdog audits the real figure pipelines clean.

    Every network a figure builds gets an `InvariantWatchdog` attached
    via its topology builder; conservation, custody, pool and wedge
    ledgers must balance throughout each experiment.

    Checks run *during* each network's run (an `InvariantViolation`
    from a periodic tick fails the figure), not after: the pool counter
    is process-global, so a post-hoc audit of an earlier network would
    misread the next network's in-flight packets as a leak.
    """

    def _audited(self, monkeypatch, module, builder_name, interval):
        from repro.sim import topology
        from repro.sim.invariants import InvariantWatchdog

        real = getattr(topology, builder_name)
        watchdogs = []

        def build(*args, **kwargs):
            built = real(*args, **kwargs)
            watchdog = InvariantWatchdog(built.network)
            watchdog.start(interval)
            watchdogs.append(watchdog)
            return built

        monkeypatch.setattr(module, builder_name, build)
        return watchdogs

    def _all_audited(self, watchdogs, expected_networks):
        assert len(watchdogs) == expected_networks
        assert all(w.checks_run > 1 for w in watchdogs)

    def test_fig01_dumbbells_audit_clean(self, monkeypatch):
        watchdogs = self._audited(
            monkeypatch, fig01_oscillation, "dumbbell", interval=1e-3
        )
        fig01_oscillation.run(tiny_scale(), n_small=5, n_large=20)
        self._all_audited(watchdogs, expected_networks=2)

    def test_queue_sweep_figures_audit_clean(self, monkeypatch):
        # Figures 10-12 all measure through queue_sweep's dumbbells.
        from repro.experiments import queue_sweep

        watchdogs = self._audited(
            monkeypatch, queue_sweep, "dumbbell", interval=1e-3
        )
        fig11_std_dev.run(tiny_scale())
        self._all_audited(watchdogs, expected_networks=4)

    def test_fig14_incast_testbeds_audit_clean(self, monkeypatch):
        watchdogs = self._audited(
            monkeypatch, fig14_incast, "paper_testbed", interval=50e-3
        )
        fig14_incast.run(tiny_scale(), flow_counts=(16,))
        self._all_audited(watchdogs, expected_networks=2)

    def test_fig15_completion_testbeds_audit_clean(self, monkeypatch):
        watchdogs = self._audited(
            monkeypatch, fig15_completion_time, "paper_testbed",
            interval=50e-3,
        )
        fig15_completion_time.run(tiny_scale(), flow_counts=(16,))
        self._all_audited(watchdogs, expected_networks=2)


class TestFluidValidation:
    def test_dt_std_below_dc_everywhere(self):
        points = fluid_validation.run(tiny_scale(), flow_counts=(10, 20))
        for p in points:
            assert p.dt_std < p.dc_std

    def test_frequencies_in_plausible_band(self):
        points = fluid_validation.run(tiny_scale(), flow_counts=(10,))
        # Oscillation periods of a few RTTs: w between ~1e3 and ~1e5.
        assert 1e3 < points[0].dc_frequency < 1e5
