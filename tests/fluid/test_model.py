"""Unit tests for the fluid-model right-hand side (Eq. 1-3)."""

import pytest

from repro.core.marking import DoubleThresholdMarker, SingleThresholdMarker
from repro.core.parameters import (
    DoubleThresholdParams,
    SingleThresholdParams,
    paper_network,
)
from repro.fluid.model import (
    FluidModel,
    FluidState,
    dctcp_fluid_model,
    dt_dctcp_fluid_model,
)


@pytest.fixture
def net():
    return paper_network(10)


@pytest.fixture
def model(net):
    return dctcp_fluid_model(net)


class TestDerivatives:
    def test_window_grows_without_marking(self, net, model):
        state = FluidState(window=10.0, alpha=0.5, queue=10.0)
        dw, _, _ = model.derivatives(state, delayed_marking=0.0)
        assert dw == pytest.approx(1.0 / net.rtt)

    def test_window_shrinks_under_full_marking(self, net, model):
        # dW = 1/R - W*alpha/(2R) with p = 1: negative for W*alpha > 2.
        state = FluidState(window=10.0, alpha=1.0, queue=10.0)
        dw, _, _ = model.derivatives(state, delayed_marking=1.0)
        assert dw == pytest.approx((1.0 - 10.0 * 1.0 / 2.0) / net.rtt)
        assert dw < 0.0

    def test_alpha_relaxes_toward_marking(self, net, model):
        state = FluidState(window=10.0, alpha=0.25, queue=0.0)
        da_up = model.derivatives(state, delayed_marking=1.0)[1]
        da_down = model.derivatives(state, delayed_marking=0.0)[1]
        assert da_up == pytest.approx(net.g / net.rtt * 0.75)
        assert da_down == pytest.approx(-net.g / net.rtt * 0.25)

    def test_queue_balance(self, net, model):
        # dq = N W / R - C: zero exactly at W = R C / N.
        w0 = net.window_at_operating_point
        state = FluidState(window=w0, alpha=0.0, queue=20.0)
        assert model.derivatives(state, 0.0)[2] == pytest.approx(0.0, abs=1e-6)
        above = FluidState(window=w0 * 1.1, alpha=0.0, queue=20.0)
        assert model.derivatives(above, 0.0)[2] > 0.0

    def test_fixed_point_has_zero_derivatives(self, net, model):
        op = net.operating_point(40.0)
        state = FluidState(window=op.window, alpha=op.alpha, queue=op.queue)
        dw, da, dq = model.derivatives(state, delayed_marking=op.p)
        scale = 1.0 / net.rtt
        assert dw / scale == pytest.approx(0.0, abs=1e-9)
        assert da / scale == pytest.approx(0.0, abs=1e-9)
        assert dq / scale == pytest.approx(0.0, abs=1e-6)

    def test_empty_queue_cannot_drain(self, model):
        state = FluidState(window=0.001, alpha=0.0, queue=0.0)
        assert model.derivatives(state, 0.0)[2] == 0.0

    def test_full_buffer_cannot_grow(self, net):
        model = dctcp_fluid_model(net, buffer_packets=100.0)
        state = FluidState(window=1000.0, alpha=0.0, queue=100.0)
        assert model.derivatives(state, 0.0)[2] == 0.0


class TestMarkingCoupling:
    def test_dctcp_marks_at_threshold(self, model):
        assert model.marking(39.0) == 0.0
        assert model.marking(40.0) == 1.0

    def test_dt_dctcp_hysteresis_through_model(self, net):
        model = dt_dctcp_fluid_model(net)
        assert model.marking(25.0) == 0.0
        assert model.marking(35.0) == 1.0  # rising into band
        assert model.marking(60.0) == 1.0
        assert model.marking(49.0) == 0.0  # falling through K2

    def test_custom_params_respected(self, net):
        model = dctcp_fluid_model(net, SingleThresholdParams(k=10.0))
        assert model.marking(10.0) == 1.0
        dt = dt_dctcp_fluid_model(net, DoubleThresholdParams(k1=5.0, k2=15.0))
        assert isinstance(dt.marker, DoubleThresholdMarker)
        assert dt.marker.params.k1 == 5.0


class TestRtt:
    def test_fixed_by_default(self, net, model):
        assert model.rtt(0.0) == net.rtt
        assert model.rtt(1000.0) == net.rtt

    def test_variable_rtt_anchored_at_setpoint(self, net):
        model = dctcp_fluid_model(net, variable_rtt=True)
        # R(setpoint) = R0 by construction (setpoint defaults to K = 40).
        assert model.rtt(40.0) == pytest.approx(net.rtt)
        assert model.rtt(80.0) > net.rtt
        assert model.rtt(0.0) < net.rtt

    def test_variable_rtt_grows_linearly_with_queue(self, net):
        model = dctcp_fluid_model(net, variable_rtt=True)
        delta = model.rtt(50.0) - model.rtt(40.0)
        assert delta == pytest.approx(10.0 / net.capacity)


class TestClamp:
    def test_window_floor_is_one_packet(self, model):
        clamped = model.clamp(FluidState(window=-5.0, alpha=0.5, queue=10.0))
        assert clamped.window == 1.0

    def test_alpha_clamped_to_unit_interval(self, model):
        assert model.clamp(FluidState(1.0, 1.5, 0.0)).alpha == 1.0
        assert model.clamp(FluidState(1.0, -0.5, 0.0)).alpha == 0.0

    def test_queue_nonnegative_and_bounded(self, net):
        model = dctcp_fluid_model(net, buffer_packets=100.0)
        assert model.clamp(FluidState(1.0, 0.0, -3.0)).queue == 0.0
        assert model.clamp(FluidState(1.0, 0.0, 150.0)).queue == 100.0

    def test_valid_state_unchanged(self, model):
        state = FluidState(window=5.0, alpha=0.3, queue=25.0)
        assert model.clamp(state) == state


class TestConstruction:
    def test_initial_state_full_pipe(self, net, model):
        state = model.initial_state()
        assert state.window == pytest.approx(net.window_at_operating_point)
        assert state.alpha == 0.0
        assert state.queue == 0.0

    def test_rejects_bad_buffer(self, net):
        with pytest.raises(ValueError):
            FluidModel(net, SingleThresholdMarker.from_threshold(40.0),
                       buffer_packets=0.0)

    def test_rejects_bad_setpoint(self, net):
        with pytest.raises(ValueError):
            FluidModel(net, SingleThresholdMarker.from_threshold(40.0),
                       queue_setpoint=-1.0)

    def test_as_tuple(self):
        assert FluidState(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)
