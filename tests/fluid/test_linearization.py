"""Linearisation tests: Eq. 10-12 against numeric Jacobians and Eq. 17."""

import numpy as np
import pytest

from repro.core.parameters import paper_network
from repro.core.transfer_function import plant
from repro.fluid.linearization import linearize, paper_rhs, queue_response


@pytest.fixture
def net():
    return paper_network(30)


@pytest.fixture
def model(net):
    return linearize(net, 40.0)


def numeric_jacobian(net, setpoint):
    """Central differences of the mixed-convention RHS at the fixed point."""
    op = net.operating_point(setpoint)
    x0 = np.array([op.window, op.alpha, op.queue])
    p0 = op.p

    def f(x, p):
        return np.array(paper_rhs(tuple(x), p, net, setpoint))

    a = np.zeros((3, 3))
    for j in range(3):
        h = 1e-6 * max(1.0, abs(x0[j]))
        plus, minus = x0.copy(), x0.copy()
        plus[j] += h
        minus[j] -= h
        a[:, j] = (f(plus, p0) - f(minus, p0)) / (2 * h)
    h = 1e-7
    b = (f(x0, p0 + h) - f(x0, p0 - h)) / (2 * h)
    return a, b


class TestMatrices:
    def test_a_matches_numeric_jacobian(self, net, model):
        a_num, _ = numeric_jacobian(net, 40.0)
        assert np.allclose(model.a, a_num, rtol=1e-5, atol=1e-3)

    def test_b_matches_numeric_jacobian(self, net, model):
        _, b_num = numeric_jacobian(net, 40.0)
        assert np.allclose(model.b, b_num, rtol=1e-5)

    def test_matrix_entries_match_eq10_12(self, net, model):
        r0 = net.rtt
        coupling = np.sqrt(net.capacity / (2 * net.n_flows * r0))
        assert model.a[0, 0] == pytest.approx(
            -net.n_flows / (r0**2 * net.capacity)
        )
        assert model.a[0, 1] == pytest.approx(-coupling)
        assert model.a[1, 1] == pytest.approx(-net.g / r0)
        assert model.a[2, 0] == pytest.approx(net.n_flows / r0)
        assert model.a[2, 2] == pytest.approx(-1.0 / r0)
        assert model.b[0] == pytest.approx(-coupling)
        assert model.b[1] == pytest.approx(net.g / r0)
        assert model.b[2] == 0.0

    def test_plant_is_stable(self, model):
        assert np.all(model.eigenvalues.real < 0.0)

    def test_eigenvalues_are_the_plant_poles(self, net, model):
        from repro.core.transfer_function import plant_poles

        eigs = sorted(-model.eigenvalues.real)
        poles = sorted(plant_poles(net))
        assert np.allclose(eigs, poles, rtol=1e-9)


class TestQueueResponse:
    @pytest.mark.parametrize("w", [100.0, 3000.0, 50000.0])
    def test_equals_minus_plant(self, net, model, w):
        s = 1j * w
        assert queue_response(s, model) == pytest.approx(
            -complex(plant(s, net)), rel=1e-9
        )

    def test_negative_dc_gain(self, net, model):
        # More marking drains the queue: Eq. 16's negative feedback.
        assert queue_response(1e-9, model).real < 0.0


class TestPaperRhs:
    def test_rejects_impossible_setpoint(self, net):
        # Setpoint above the BDP makes R(q0) = R0 unachievable.
        with pytest.raises(ValueError):
            paper_rhs((10.0, 0.5, 40.0), 0.5, net, net.bandwidth_delay_product)

    def test_zero_at_operating_point(self, net):
        op = net.operating_point(40.0)
        rhs = paper_rhs((op.window, op.alpha, op.queue), op.p, net, 40.0)
        assert np.allclose(np.array(rhs) * net.rtt, 0.0, atol=1e-9)

    def test_queue_term_uses_variable_rtt(self, net):
        """Eq. 12's -dq/R0 term exists only because dq/dt sees R(q)."""
        op = net.operating_point(40.0)
        dq = 0.01
        base = paper_rhs((op.window, op.alpha, 40.0), op.p, net, 40.0)[2]
        shifted = paper_rhs((op.window, op.alpha, 40.0 + dq), op.p, net, 40.0)[2]
        # d(dq/dt)/dq ~ -1/R0.
        assert (shifted - base) / dq == pytest.approx(-1.0 / net.rtt, rel=1e-3)
