"""Tests for the heterogeneous-RTT multi-class fluid model."""

import numpy as np
import pytest

from repro.core.marking import DoubleThresholdMarker, SingleThresholdMarker
from repro.core.parameters import paper_network
from repro.fluid import (
    FlowClass,
    MultiClassModel,
    dctcp_fluid_model,
    simulate,
    simulate_multiclass,
)

CAPACITY = 10e9 / (8 * 1500)


def dc_marker():
    return SingleThresholdMarker.from_threshold(40.0)


def dt_marker():
    return DoubleThresholdMarker.from_thresholds(30.0, 50.0)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiClassModel(0.0, [FlowClass(1, 1e-4)], dc_marker())
        with pytest.raises(ValueError):
            MultiClassModel(CAPACITY, [], dc_marker())
        with pytest.raises(ValueError):
            MultiClassModel(CAPACITY, [FlowClass(1, 1e-4)], dc_marker(), g=1.5)
        with pytest.raises(ValueError):
            FlowClass(0, 1e-4)
        with pytest.raises(ValueError):
            FlowClass(1, 0.0)

    def test_simulate_validation(self):
        model = MultiClassModel(CAPACITY, [FlowClass(5, 1e-4)], dc_marker())
        with pytest.raises(ValueError):
            simulate_multiclass(model, duration=0.0)
        with pytest.raises(ValueError):
            simulate_multiclass(model, duration=0.01, dt=1.0)


class TestSingleClassReduction:
    def test_matches_single_class_model(self):
        """With one class the multi-class system is Eq. 1-3 exactly."""
        net = paper_network(10)
        single = simulate(
            dctcp_fluid_model(net), duration=0.02
        ).after(0.01)
        multi = simulate_multiclass(
            MultiClassModel(
                net.capacity, [FlowClass(10, net.rtt)], dc_marker(), g=net.g
            ),
            duration=0.02,
        ).after(0.01)
        assert multi.mean_queue == pytest.approx(single.mean_queue, rel=0.1)
        assert multi.std_queue == pytest.approx(single.std_queue, rel=0.3)


class TestInvariants:
    def make_trace(self, marker=None, classes=None, duration=0.02):
        classes = classes or [FlowClass(5, 1e-4), FlowClass(5, 3e-4)]
        model = MultiClassModel(
            CAPACITY, classes, marker or dc_marker()
        )
        return simulate_multiclass(model, duration=duration)

    def test_queue_nonnegative(self):
        trace = self.make_trace()
        assert np.all(trace.queue >= 0.0)

    def test_alphas_in_unit_interval(self):
        trace = self.make_trace()
        assert np.all(trace.alphas >= 0.0)
        assert np.all(trace.alphas <= 1.0)

    def test_windows_at_least_one(self):
        trace = self.make_trace()
        assert np.all(trace.windows >= 1.0)

    def test_throughput_conservation(self):
        """In steady state, aggregate rate matches capacity (full pipe)."""
        trace = self.make_trace(duration=0.04).after(0.02)
        total = trace.class_throughput().sum()
        assert total == pytest.approx(CAPACITY, rel=0.15)

    def test_shorter_rtt_class_gets_more_throughput_per_flow(self):
        """The familiar RTT unfairness of window-based control."""
        trace = self.make_trace(duration=0.04).after(0.02)
        per_flow = trace.class_throughput() / np.array([5.0, 5.0])
        assert per_flow[0] > per_flow[1]


class TestHeterogeneousStability:
    def test_dt_steadier_than_dc_under_rtt_spread(self):
        """DT-DCTCP's advantage survives heterogeneous RTTs."""
        classes = [FlowClass(5, 1e-4), FlowClass(5, 2e-4)]
        dc = simulate_multiclass(
            MultiClassModel(CAPACITY, classes, dc_marker()), duration=0.04
        ).after(0.02)
        dt = simulate_multiclass(
            MultiClassModel(CAPACITY, classes, dt_marker()), duration=0.04
        ).after(0.02)
        assert dt.std_queue < dc.std_queue

    def test_rtt_spread_desynchronises(self):
        """Two different-RTT classes beat against each other, producing a
        different (typically richer) oscillation than one merged class."""
        merged = simulate_multiclass(
            MultiClassModel(CAPACITY, [FlowClass(10, 1e-4)], dc_marker()),
            duration=0.03,
        ).after(0.015)
        spread = simulate_multiclass(
            MultiClassModel(
                CAPACITY,
                [FlowClass(5, 0.7e-4), FlowClass(5, 1.5e-4)],
                dc_marker(),
            ),
            duration=0.03,
        ).after(0.015)
        # Both regulate near the threshold; amplitudes differ.
        assert 20 < merged.mean_queue < 70
        assert 20 < spread.mean_queue < 70
