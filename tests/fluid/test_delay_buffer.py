"""Unit tests for the DDE history buffer."""

import pytest

from repro.fluid.delay_buffer import DelayBuffer


class TestDelayBufferBasics:
    def test_initial_value_everywhere_before_history(self):
        buf = DelayBuffer(0.0, 5.0)
        assert buf.value_at(-1.0) == 5.0
        assert buf.value_at(0.0) == 5.0

    def test_append_and_latest(self):
        buf = DelayBuffer(0.0, 1.0)
        buf.append(1.0, 3.0)
        assert buf.latest_time == 1.0
        assert buf.latest_value == 3.0
        assert len(buf) == 2

    def test_rejects_time_travel(self):
        buf = DelayBuffer(0.0, 1.0)
        buf.append(2.0, 1.0)
        with pytest.raises(ValueError):
            buf.append(1.0, 1.0)

    def test_allows_repeated_time(self):
        buf = DelayBuffer(0.0, 1.0)
        buf.append(1.0, 2.0)
        buf.append(1.0, 3.0)
        assert buf.latest_value == 3.0

    def test_invalid_interpolation_mode(self):
        with pytest.raises(ValueError):
            DelayBuffer(0.0, 0.0, interpolation="cubic")


class TestLinearInterpolation:
    def test_midpoint(self):
        buf = DelayBuffer(0.0, 0.0)
        buf.append(2.0, 4.0)
        assert buf.value_at(1.0) == pytest.approx(2.0)

    def test_exact_sample_times(self):
        buf = DelayBuffer(0.0, 1.0)
        buf.append(1.0, 5.0)
        buf.append(2.0, 9.0)
        assert buf.value_at(1.0) == pytest.approx(5.0)

    def test_beyond_last_sample_holds(self):
        buf = DelayBuffer(0.0, 1.0)
        buf.append(1.0, 7.0)
        assert buf.value_at(10.0) == 7.0

    def test_piecewise_segments(self):
        buf = DelayBuffer(0.0, 0.0)
        buf.append(1.0, 10.0)
        buf.append(3.0, 0.0)
        assert buf.value_at(0.5) == pytest.approx(5.0)
        assert buf.value_at(2.0) == pytest.approx(5.0)


class TestZeroOrderHold:
    def test_holds_previous_value(self):
        buf = DelayBuffer(0.0, 0.0, interpolation="previous")
        buf.append(1.0, 1.0)
        buf.append(2.0, 0.0)
        assert buf.value_at(0.5) == 0.0
        assert buf.value_at(1.0) == 1.0
        assert buf.value_at(1.999) == 1.0
        assert buf.value_at(2.0) == 0.0

    def test_relay_signal_never_interpolated(self):
        """The marking signal is binary; lookups must return 0 or 1."""
        buf = DelayBuffer(0.0, 0.0, interpolation="previous")
        for t, v in [(1.0, 1.0), (2.0, 0.0), (3.0, 1.0)]:
            buf.append(t, v)
        values = {buf.value_at(t) for t in [0.1, 0.9, 1.5, 2.5, 3.5]}
        assert values <= {0.0, 1.0}


class TestTrim:
    def test_trim_preserves_lookup_at_boundary(self):
        buf = DelayBuffer(0.0, 0.0)
        for t in range(1, 11):
            buf.append(float(t), float(t))
        buf.trim_before(5.0)
        assert buf.value_at(5.0) == pytest.approx(5.0)
        assert buf.value_at(5.5) == pytest.approx(5.5)
        assert len(buf) < 11

    def test_trim_keeps_one_older_sample(self):
        buf = DelayBuffer(0.0, 0.0)
        buf.append(1.0, 1.0)
        buf.append(2.0, 2.0)
        buf.trim_before(1.5)
        # Lookup at 1.5 still interpolates between 1.0 and 2.0.
        assert buf.value_at(1.5) == pytest.approx(1.5)

    def test_trim_noop_when_all_recent(self):
        buf = DelayBuffer(0.0, 0.0)
        buf.append(1.0, 1.0)
        buf.trim_before(0.0)
        assert len(buf) == 2
