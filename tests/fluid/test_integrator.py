"""Unit and behaviour tests for the DDE integrator."""

import math

import numpy as np
import pytest

from repro.core.parameters import paper_network
from repro.fluid.integrator import FluidTrace, simulate
from repro.fluid.model import FluidState, dctcp_fluid_model, dt_dctcp_fluid_model


@pytest.fixture
def net():
    return paper_network(10)


class TestSimulateBasics:
    def test_trace_lengths_consistent(self, net):
        trace = simulate(dctcp_fluid_model(net), duration=0.002)
        n = len(trace.time)
        assert n == len(trace.window) == len(trace.alpha)
        assert n == len(trace.queue) == len(trace.marking)

    def test_time_axis_uniform_from_zero(self, net):
        trace = simulate(dctcp_fluid_model(net), duration=0.002)
        assert trace.time[0] == 0.0
        steps = np.diff(trace.time)
        assert np.allclose(steps, steps[0])

    def test_record_every_thins_output(self, net):
        full = simulate(dctcp_fluid_model(net), duration=0.002)
        thin = simulate(dctcp_fluid_model(net), duration=0.002, record_every=4)
        assert len(thin.time) == pytest.approx(len(full.time) / 4, abs=2)

    def test_custom_initial_state(self, net):
        start = FluidState(window=5.0, alpha=0.5, queue=100.0)
        trace = simulate(
            dctcp_fluid_model(net), duration=0.001, initial_state=start
        )
        assert trace.queue[0] == 100.0
        assert trace.window[0] == 5.0

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_bad_duration(self, net, bad):
        with pytest.raises(ValueError):
            simulate(dctcp_fluid_model(net), duration=bad)

    def test_rejects_bad_dt(self, net):
        with pytest.raises(ValueError):
            simulate(dctcp_fluid_model(net), duration=0.01, dt=net.rtt * 2)
        with pytest.raises(ValueError):
            simulate(dctcp_fluid_model(net), duration=0.01, dt=0.0)

    def test_rejects_bad_record_every(self, net):
        with pytest.raises(ValueError):
            simulate(dctcp_fluid_model(net), duration=0.001, record_every=0)


class TestPhysicalInvariants:
    def test_queue_never_negative(self, net):
        trace = simulate(dctcp_fluid_model(net), duration=0.01)
        assert np.all(trace.queue >= 0.0)

    def test_alpha_in_unit_interval(self, net):
        trace = simulate(dctcp_fluid_model(net), duration=0.01)
        assert np.all(trace.alpha >= 0.0)
        assert np.all(trace.alpha <= 1.0)

    def test_window_at_least_one_packet(self, net):
        trace = simulate(dctcp_fluid_model(net), duration=0.01)
        assert np.all(trace.window >= 1.0)

    def test_marking_is_binary(self, net):
        trace = simulate(dctcp_fluid_model(net), duration=0.01)
        assert set(np.unique(trace.marking)) <= {0.0, 1.0}

    def test_buffer_limit_respected(self, net):
        model = dctcp_fluid_model(net, buffer_packets=60.0)
        trace = simulate(model, duration=0.01)
        assert trace.queue.max() <= 60.0 + 1e-9


class TestSteadyStateBehaviour:
    def test_dctcp_queue_oscillates_around_threshold(self, net):
        trace = simulate(dctcp_fluid_model(net), duration=0.04).after(0.02)
        assert 25.0 < trace.mean_queue < 60.0
        # It is a genuine oscillation, not a fixed point.
        assert trace.std_queue > 1.0

    def test_dt_dctcp_std_smaller_than_dctcp(self, net):
        """The paper's core fluid-level claim at N = 10."""
        dc = simulate(dctcp_fluid_model(net), duration=0.04).after(0.02)
        dt = simulate(dt_dctcp_fluid_model(net), duration=0.04).after(0.02)
        assert dt.std_queue < dc.std_queue

    def test_alpha_matches_operating_point(self, net):
        # alpha0 = sqrt(2/W0) ~ 0.49 at N = 10 on the paper's pipe.
        trace = simulate(dctcp_fluid_model(net), duration=0.04).after(0.02)
        expected = math.sqrt(2.0 / net.window_at_operating_point)
        assert trace.mean_alpha == pytest.approx(expected, rel=0.25)

    def test_more_flows_bigger_oscillation(self):
        small = simulate(
            dctcp_fluid_model(paper_network(10), variable_rtt=True),
            duration=0.04,
        ).after(0.02)
        large = simulate(
            dctcp_fluid_model(paper_network(30), variable_rtt=True),
            duration=0.04,
        ).after(0.02)
        assert large.std_queue > small.std_queue

    def test_fixed_rtt_diverges_when_pipe_too_small(self):
        """For N > R0*C/2 the fixed-RTT model has no equilibrium: the
        queue must blow up (documented limitation; the variable-RTT
        model self-stabilises)."""
        net = paper_network(80)
        fixed = simulate(dctcp_fluid_model(net), duration=0.02)
        variable = simulate(
            dctcp_fluid_model(net, variable_rtt=True), duration=0.02
        )
        assert fixed.queue[-1] > 1000.0
        assert variable.queue[-1] < 300.0

    def test_integrator_convergence_under_dt_refinement(self, net):
        coarse = simulate(
            dctcp_fluid_model(net), duration=0.02, dt=net.rtt / 20
        ).after(0.01)
        fine = simulate(
            dctcp_fluid_model(net), duration=0.02, dt=net.rtt / 80
        ).after(0.01)
        assert coarse.mean_queue == pytest.approx(fine.mean_queue, rel=0.15)


class TestFluidTrace:
    def make_trace(self, values, dt=1e-5):
        n = len(values)
        t = np.arange(n) * dt
        z = np.zeros(n)
        return FluidTrace(
            time=t, window=z, alpha=z, queue=np.asarray(values, float), marking=z
        )

    def test_after_drops_transient(self):
        trace = self.make_trace(np.arange(100.0))
        late = trace.after(50e-5)
        assert late.time[0] >= 50e-5
        assert len(late.time) == 50

    def test_statistics(self):
        trace = self.make_trace([10.0, 20.0, 30.0])
        assert trace.mean_queue == pytest.approx(20.0)
        assert trace.std_queue == pytest.approx(np.std([10, 20, 30]))

    def test_amplitude_of_known_sine(self):
        t = np.arange(4096) * 1e-5
        q = 40.0 + 15.0 * np.sin(2 * np.pi * 500 * t)
        trace = self.make_trace(q)
        assert trace.queue_amplitude == pytest.approx(15.0, rel=0.05)

    def test_dominant_frequency_of_known_sine(self):
        t = np.arange(8192) * 1e-5
        freq_hz = 800.0
        q = 40.0 + 5.0 * np.sin(2 * np.pi * freq_hz * t)
        trace = self.make_trace(q)
        assert trace.dominant_frequency() == pytest.approx(
            2 * np.pi * freq_hz, rel=0.02
        )

    def test_dominant_frequency_needs_samples(self):
        with pytest.raises(ValueError):
            self.make_trace([1.0, 2.0]).dominant_frequency()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FluidTrace(
                time=np.zeros(3),
                window=np.zeros(3),
                alpha=np.zeros(2),
                queue=np.zeros(3),
                marking=np.zeros(3),
            )
