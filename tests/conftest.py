"""Shared fixtures for the test suite."""

import pytest

from repro.core.parameters import (
    DoubleThresholdParams,
    SingleThresholdParams,
    paper_network,
)


@pytest.fixture
def net10():
    """The paper's plant at N = 10 flows."""
    return paper_network(10)


@pytest.fixture
def net30():
    """The paper's plant at N = 30 flows (valid operating point)."""
    return paper_network(30)


@pytest.fixture
def dctcp_params():
    """K = 40 packets."""
    return SingleThresholdParams(k=40.0)


@pytest.fixture
def dt_params():
    """K1 = 30, K2 = 50 packets."""
    return DoubleThresholdParams(k1=30.0, k2=50.0)
