"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.exec import ResultCache
from repro.exec.cases import Case, case_key, execute_case
from repro.exec.faults import (
    DEMO_EXPERIMENT,
    FAULT_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    demo_cases,
    run_case_with_fault,
    tear_cache_entry,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meltdown")

    def test_rejects_nonpositive_fail_attempts(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="error", fail_attempts=0)

    def test_active_window(self):
        spec = FaultSpec(kind="error", fail_attempts=2)
        assert spec.active(1) and spec.active(2)
        assert not spec.active(3)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.from_rate(50, 0.3, seed=9, kinds=FAULT_KINDS)
        b = FaultPlan.from_rate(50, 0.3, seed=9, kinds=FAULT_KINDS)
        assert a.specs == b.specs

    def test_faulted_set_stable_across_kind_lists(self):
        a = FaultPlan.from_rate(50, 0.3, seed=9, kinds=("error",))
        b = FaultPlan.from_rate(50, 0.3, seed=9, kinds=FAULT_KINDS)
        assert a.faulted_indices() == b.faulted_indices()

    def test_rate_bounds(self):
        assert len(FaultPlan.from_rate(30, 0.0, seed=1)) == 0
        assert len(FaultPlan.from_rate(30, 1.0, seed=1)) == 30
        with pytest.raises(ValueError):
            FaultPlan.from_rate(30, 1.5, seed=1)
        with pytest.raises(ValueError):
            FaultPlan.from_rate(30, 0.5, seed=1, kinds=())

    def test_count_by_kind(self):
        plan = FaultPlan.from_indices({
            0: FaultSpec(kind="error"),
            1: FaultSpec(kind="die"),
            2: FaultSpec(kind="error"),
        })
        assert plan.count() == 3
        assert plan.count("error") == 2
        assert plan.count("die", "hang") == 1

    def test_spec_for_unfaulted_index_is_none(self):
        plan = FaultPlan.from_indices({1: FaultSpec(kind="error")})
        assert plan.spec_for(0) is None
        assert plan.spec_for(1).kind == "error"


class TestWorkerSideInjection:
    def test_no_spec_is_a_passthrough(self):
        case = demo_cases(3)[2]
        assert run_case_with_fault(case, None, 1) == execute_case(case)

    def test_inactive_attempt_is_a_passthrough(self):
        case = demo_cases(1)[0]
        spec = FaultSpec(kind="error", fail_attempts=1)
        assert run_case_with_fault(case, spec, 2) == execute_case(case)

    def test_error_kind_raises(self):
        with pytest.raises(FaultInjected):
            run_case_with_fault(
                demo_cases(1)[0], FaultSpec(kind="error"), 1
            )

    def test_corrupt_kind_returns_non_dict(self):
        result = run_case_with_fault(
            demo_cases(1)[0], FaultSpec(kind="corrupt"), 1
        )
        assert not isinstance(result, dict)

    def test_torn_write_kind_executes_normally(self):
        case = demo_cases(1)[0]
        spec = FaultSpec(kind="torn-write")
        assert run_case_with_fault(case, spec, 1) == execute_case(case)


class TestTornWrites:
    def test_tear_cache_entry_truncates_and_get_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = demo_cases(1)[0]
        cache.put(case, {"value": 1})
        assert tear_cache_entry(cache, case)
        reopened = ResultCache(tmp_path)
        assert reopened.get(case) is None
        assert reopened.corrupt == 1
        assert not cache._path(case_key(case)).exists()
        assert any(reopened.quarantine_root.iterdir())

    def test_tear_without_entry_reports_false(self, tmp_path):
        assert not tear_cache_entry(ResultCache(tmp_path), demo_cases(1)[0])


class TestDemoExperiment:
    def test_demo_cases_are_valid_executable_cases(self):
        cases = demo_cases(4)
        assert [c.experiment for c in cases] == [DEMO_EXPERIMENT] * 4
        results = [execute_case(c) for c in cases]
        assert [r["i"] for r in results] == [0, 1, 2, 3]
        # Deterministic: same cell, same value, across calls.
        assert execute_case(cases[2]) == results[2]

    def test_demo_values_distinct(self):
        values = {execute_case(c)["value"] for c in demo_cases(16)}
        assert len(values) == 16
