"""Unit tests for the Case model and the content-addressed key."""

import pytest

from repro.exec.cases import Case, case_key, execute_case
from tests.executor.stub_experiment import EXPERIMENT


def make_case(x=1, label="a", experiment=EXPERIMENT, **extra):
    return Case(experiment=experiment, label=label, params={"x": x, **extra})


class TestCase:
    def test_params_must_be_json_serialisable(self):
        with pytest.raises(ValueError):
            Case(experiment=EXPERIMENT, label="bad", params={"x": object()})

    def test_experiment_required(self):
        with pytest.raises(ValueError):
            Case(experiment="", label="x", params={})

    def test_repr_names_experiment_and_label(self):
        assert "stub_experiment" in repr(make_case())


class TestCaseKey:
    def test_stable_across_param_ordering(self):
        a = Case(experiment=EXPERIMENT, label="", params={"x": 1, "y": 2})
        b = Case(experiment=EXPERIMENT, label="", params={"y": 2, "x": 1})
        assert case_key(a) == case_key(b)

    def test_label_does_not_enter_key(self):
        assert case_key(make_case(label="a")) == case_key(make_case(label="b"))

    def test_params_enter_key(self):
        assert case_key(make_case(x=1)) != case_key(make_case(x=2))

    def test_experiment_enters_key(self):
        other = Case(experiment="repro.experiments.queue_sweep",
                     label="a", params={"x": 1})
        assert case_key(make_case()) != case_key(other)

    def test_key_is_hex_sha256(self):
        key = case_key(make_case())
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_shared_sweep_cells_across_figures(self):
        """Figures 10, 11 and 12 must emit identical cases so the cache
        runs the underlying sweep once for all three."""
        from repro.experiments import (
            fig10_avg_queue,
            fig11_std_dev,
            fig12_alpha,
        )
        from repro.experiments.config import quick_scale

        scale = quick_scale()
        keys10 = [case_key(c) for c in fig10_avg_queue.cases(scale)]
        keys11 = [case_key(c) for c in fig11_std_dev.cases(scale)]
        keys12 = [case_key(c) for c in fig12_alpha.cases(scale)]
        assert keys10 == keys11 == keys12


class TestExecuteCase:
    def test_dispatches_to_module_run_case(self):
        assert execute_case(make_case(x=21))["value"] == 42

    def test_missing_run_case_rejected(self):
        case = Case(experiment="repro.stats.timeseries", label="x",
                    params={})
        with pytest.raises(TypeError):
            execute_case(case)
