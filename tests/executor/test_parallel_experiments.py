"""Integration: experiment figures are identical sequential vs parallel.

These drive the real simulator at a tiny scale, so they double as the
determinism guarantee the executor advertises: every sweep cell seeds
its own RNGs and owns its simulator, so the worker count and completion
order cannot change a single digit of the tables.
"""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.executor import SweepExecutor
from repro.experiments import fig01_oscillation, fig10_avg_queue, fig12_alpha
from repro.experiments.config import Scale


def tiny_scale() -> Scale:
    return Scale(
        sim_duration=0.006,
        warmup=0.002,
        sample_interval=20e-6,
        flow_counts=(4, 8),
        n_queries=2,
        incast_flows=(8,),
        completion_flows=(8,),
        fluid_duration=0.02,
    )


class TestParallelEqualsSequential:
    def test_fig10_sweep_identical(self, tmp_path):
        scale = tiny_scale()
        sequential = fig10_avg_queue.run(scale)
        parallel = fig10_avg_queue.run(
            scale, executor=SweepExecutor(jobs=2, cache=ResultCache(tmp_path))
        )
        assert sequential.points == parallel.points

    def test_fig01_traces_identical(self, tmp_path):
        scale = tiny_scale()
        sequential = fig01_oscillation.run(scale, n_small=4, n_large=8)
        parallel = fig01_oscillation.run(
            scale,
            n_small=4,
            n_large=8,
            executor=SweepExecutor(jobs=2, cache=ResultCache(tmp_path)),
        )
        assert sequential.amplitude_small == parallel.amplitude_small
        assert sequential.amplitude_large == parallel.amplitude_large
        assert (sequential.trace_small[1] == parallel.trace_small[1]).all()
        assert (sequential.trace_large[1] == parallel.trace_large[1]).all()


class TestWarmCache:
    def test_second_run_skips_simulation_and_matches(self, tmp_path):
        scale = tiny_scale()
        cache_dir = tmp_path / "cache"

        cold_ex = SweepExecutor(jobs=1, cache=ResultCache(cache_dir))
        cold = fig10_avg_queue.run(scale, executor=cold_ex)
        assert cold_ex.report.stages[0].cache_hits == 0
        assert cold_ex.report.stages[0].executed == 4

        warm_ex = SweepExecutor(jobs=1, cache=ResultCache(cache_dir))
        warm = fig10_avg_queue.run(scale, executor=warm_ex)
        assert warm_ex.report.stages[0].cache_hits == 4
        assert warm_ex.report.stages[0].executed == 0
        assert cold.points == warm.points

    def test_sweep_shared_across_figure_modules(self, tmp_path):
        """Figure 12 rides entirely on Figure 10's cached cells."""
        scale = tiny_scale()
        cache = ResultCache(tmp_path)
        fig10_avg_queue.run(scale, executor=SweepExecutor(jobs=1, cache=cache))
        ex = SweepExecutor(jobs=1, cache=cache)
        sweep = fig12_alpha.run(scale, executor=ex)
        assert ex.report.stages[0].cache_hits == 4
        for points in sweep.points.values():
            for p in points:
                assert 0.0 <= p.mean_alpha <= 1.0

    def test_cached_float_round_trip_is_exact(self, tmp_path):
        """JSON float round-tripping must not perturb results."""
        scale = tiny_scale()
        cache = ResultCache(tmp_path)
        cold = fig10_avg_queue.run(
            scale, executor=SweepExecutor(jobs=1, cache=cache)
        )
        warm = fig10_avg_queue.run(
            scale, executor=SweepExecutor(jobs=1, cache=cache)
        )
        for protocol in cold.points:
            for a, b in zip(cold.points[protocol], warm.points[protocol]):
                assert a == b  # exact field-wise equality, not approx
