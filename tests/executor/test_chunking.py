"""Chunked dispatch: batching is invisible to results and semantics.

``chunk_size`` ships several cases per worker round trip; everything a
user can observe — results, cache contents, manifest entries, retries,
failure records — must be identical to the unchunked run.
"""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.cases import Case, case_key, execute_case_chunk
from repro.exec.executor import ChunkMemberError, SweepExecutor
from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.manifest import StageManifest
from tests.executor.stub_experiment import EXPERIMENT


def make_cases(n, **extra):
    return [
        Case(experiment=EXPERIMENT, label=f"x={x}", params={"x": x, **extra})
        for x in range(n)
    ]


class TestWorkerEntryPoint:
    def test_outcomes_positionally_aligned(self):
        cases = make_cases(3)
        outcomes = execute_case_chunk(cases)
        assert [o[0] for o in outcomes] == ["ok", "ok", "ok"]
        assert [o[1]["value"] for o in outcomes] == [0, 2, 4]

    def test_member_failure_does_not_poison_neighbours(self):
        cases = make_cases(2) + [
            Case(experiment=EXPERIMENT, label="bad",
                 params={"x": 9, "explode": True}),
            Case(experiment=EXPERIMENT, label="after",
                 params={"x": 5}),
        ]
        outcomes = execute_case_chunk(cases)
        assert outcomes[0][0] == outcomes[1][0] == outcomes[3][0] == "ok"
        assert outcomes[2] == ("error", "RuntimeError", "boom: bad")
        assert outcomes[3][1]["value"] == 10

    def test_empty_chunk(self):
        assert execute_case_chunk([]) == []


class TestResultEquality:
    def test_chunked_matches_unchunked(self):
        cases = make_cases(13)
        plain = SweepExecutor(jobs=2).run(cases)
        chunked = SweepExecutor(jobs=2, chunk_size=4).run(cases)
        assert chunked == plain

    def test_chunk_size_larger_than_grid(self):
        cases = make_cases(3)
        results = SweepExecutor(jobs=2, chunk_size=64).run(cases)
        assert [r["value"] for r in results] == [0, 2, 4]

    def test_chunk_size_one_is_solo_dispatch(self):
        cases = make_cases(5)
        results = SweepExecutor(jobs=2, chunk_size=1).run(cases)
        assert [r["value"] for r in results] == [2 * x for x in range(5)]

    def test_per_call_override_beats_constructor(self, tmp_path):
        log = tmp_path / "log"
        cases = make_cases(6, log=str(log))
        SweepExecutor(jobs=2, chunk_size=3).run(cases, chunk_size=2)
        assert len(log.read_text().splitlines()) == 6

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            SweepExecutor(chunk_size=0)

    def test_supervised_chunked_matches_unchunked(self):
        cases = make_cases(9)
        plain = SweepExecutor(jobs=2, retries=1,
                              failure_policy="skip").run(cases)
        chunked = SweepExecutor(jobs=2, retries=1, failure_policy="skip",
                                chunk_size=3).run(cases)
        assert chunked == plain


class TestCacheAndManifest:
    def test_same_cache_keys_as_unchunked(self, tmp_path):
        cases = make_cases(8)
        cache_a = ResultCache(tmp_path / "a")
        cache_b = ResultCache(tmp_path / "b")
        SweepExecutor(jobs=2, cache=cache_a).run(cases, stage="plain")
        SweepExecutor(jobs=2, cache=cache_b,
                      chunk_size=4).run(cases, stage="chunked")
        for case in cases:
            assert cache_b.get(case) == cache_a.get(case)

    def test_chunked_run_warms_unchunked_and_back(self, tmp_path):
        log = tmp_path / "log"
        cache = ResultCache(tmp_path / "cache")
        cases = make_cases(6, log=str(log))
        SweepExecutor(jobs=2, cache=cache, chunk_size=3).run(cases)
        ex = SweepExecutor(jobs=2, cache=cache)
        ex.run(cases)
        assert len(log.read_text().splitlines()) == 6  # nothing re-ran
        assert ex.report.stages[0].cache_hits == 6

    def test_resume_mid_chunk(self, tmp_path):
        """A run killed between chunk members resumes at the hole.

        Simulated by pre-caching a strict prefix of the grid (exactly
        the on-disk state an interrupted chunked run leaves: every
        completed member committed individually) and re-running chunked.
        """
        log = tmp_path / "log"
        cache = ResultCache(tmp_path / "cache")
        cases = make_cases(8, log=str(log))
        SweepExecutor(jobs=1, cache=cache).run(cases[:3], stage="s")
        assert len(log.read_text().splitlines()) == 3

        ex = SweepExecutor(jobs=2, cache=cache, chunk_size=4)
        results = ex.run(cases, stage="s")
        assert [r["value"] for r in results] == [2 * x for x in range(8)]
        # Only the five holes executed, despite riding in chunks.
        assert len(log.read_text().splitlines()) == 8
        assert ex.report.stages[0].cache_hits == 3

    def test_manifest_entries_are_per_case(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cases = make_cases(5)
        keys = [case_key(c) for c in cases]
        SweepExecutor(jobs=2, cache=cache,
                      chunk_size=5).run(cases, stage="m")
        manifest = StageManifest.for_stage(cache.root, "m", keys)
        assert manifest.completed_keys() == set(keys)


class TestFailureAttribution:
    def test_member_failure_attributed_to_its_case(self):
        cases = make_cases(4)
        cases[2] = Case(experiment=EXPERIMENT, label="bad",
                        params={"x": 2, "explode": True})
        ex = SweepExecutor(jobs=1, failure_policy="skip", chunk_size=4)
        results = ex.run(cases, stage="attr")
        assert [r["value"] if r else None for r in results] == \
            [0, 2, None, 6]
        (record,) = ex.report.failures
        assert record.label == "bad"
        assert record.kind == "exception"
        assert "RuntimeError" in record.message
        assert "boom: bad" in record.message

    def test_member_failure_raises_under_raise_policy(self):
        cases = make_cases(3)
        cases[1] = Case(experiment=EXPERIMENT, label="bad",
                        params={"x": 1, "explode": True})
        with pytest.raises(ChunkMemberError, match="boom: bad"):
            SweepExecutor(jobs=2, chunk_size=3).run(cases)

    def test_member_failure_retries_solo_then_succeeds(self, tmp_path):
        # A die-fault on attempt 1 forces that case solo (fault-injected
        # cases never chunk), its neighbours ride chunks and finish.
        plan = FaultPlan.from_indices(
            {1: FaultSpec(kind="error", fail_attempts=1)}
        )
        ex = SweepExecutor(jobs=2, retries=1, fault_plan=plan, chunk_size=3)
        results = ex.run(make_cases(6), stage="retry")
        assert [r["value"] for r in results] == [2 * x for x in range(6)]
        assert ex.report.stages[0].retried == 1

    def test_die_fault_in_unchunked_neighbourhood(self):
        # A worker crash with chunks in flight: the probe machinery must
        # flatten member tuples and re-run every casualty solo.
        plan = FaultPlan.from_indices(
            {2: FaultSpec(kind="die", fail_attempts=1)}
        )
        ex = SweepExecutor(jobs=2, retries=1, fault_plan=plan, chunk_size=3)
        results = ex.run(make_cases(7), stage="die")
        assert [r["value"] for r in results] == [2 * x for x in range(7)]

    def test_chunk_member_error_message(self):
        err = ChunkMemberError("ValueError", "bad input")
        assert err.type_name == "ValueError"
        assert str(err) == "ValueError: bad input"


class TestTimeouts:
    def test_hung_member_attributed_and_neighbours_survive(self):
        cases = make_cases(4)
        cases[1] = Case(experiment=EXPERIMENT, label="hang",
                        params={"x": 1, "sleep": 30.0})
        ex = SweepExecutor(jobs=1, timeout=0.8, failure_policy="skip",
                           chunk_size=4)
        results = ex.run(cases, stage="hang")
        assert results[1] is None
        assert [r["value"] if r else None for r in results] == \
            [0, None, 4, 6]
        (record,) = ex.report.failures
        assert record.label == "hang"
        assert record.kind == "timeout"
