"""A minimal ``run_case`` target for executor tests.

Computes a deterministic function of the parameters and, when asked,
appends one line to a log file — an execution counter that works across
process boundaries, so tests can tell a cache hit from a re-run.
"""

from __future__ import annotations

import os
import time


EXPERIMENT = "tests.executor.stub_experiment"


def run_case(case) -> dict:
    params = case.params
    if "log" in params:
        with open(params["log"], "a", encoding="utf-8") as fh:
            fh.write(f"{case.label} pid={os.getpid()}\n")
    if params.get("sleep"):
        time.sleep(params["sleep"])
    if params.get("explode"):
        raise RuntimeError(f"boom: {case.label}")
    return {"value": params["x"] * 2, "label": case.label}
