"""Executor failure paths: retry, timeout, broken pools, skip policies.

Every test drives the real supervised pool through the deterministic
fault harness (:mod:`repro.exec.faults`), so the failures are the real
thing — raised exceptions, hard worker deaths, hung workers — not
mocks.  Backoffs are kept tiny so the suite stays fast.
"""

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.exec import (
    CaseTimeoutError,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    ResultCache,
    SweepExecutor,
)
from repro.exec.cases import Case
from tests.executor.stub_experiment import EXPERIMENT


def make_cases(n, **extra):
    return [
        Case(experiment=EXPERIMENT, label=f"x={x}", params={"x": x, **extra})
        for x in range(n)
    ]


def supervisor(**kw):
    kw.setdefault("jobs", 2)
    kw.setdefault("backoff_base", 0.01)
    return SweepExecutor(**kw)


PERMANENT = 10**6


class TestConstruction:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            SweepExecutor(failure_policy="explode")

    def test_rejects_bad_timeout_and_retries(self):
        with pytest.raises(ValueError):
            SweepExecutor(timeout=0)
        with pytest.raises(ValueError):
            SweepExecutor(retries=-1)

    def test_retry_then_skip_implies_a_retry_budget(self):
        assert SweepExecutor(failure_policy="retry-then-skip").retries > 0
        assert SweepExecutor(
            failure_policy="retry-then-skip", retries=5
        ).retries == 5

    def test_default_executor_is_unsupervised(self):
        assert not SweepExecutor(jobs=4).supervised
        assert SweepExecutor(timeout=1.0).supervised
        assert SweepExecutor(retries=1).supervised
        assert SweepExecutor(failure_policy="skip").supervised


class TestRetry:
    def test_transient_fault_retries_until_success(self):
        plan = FaultPlan.from_indices(
            {1: FaultSpec(kind="error", fail_attempts=2)}
        )
        ex = supervisor(retries=3, fault_plan=plan)
        results = ex.run(make_cases(4), stage="retry")
        assert [r["value"] for r in results] == [0, 2, 4, 6]
        assert ex.report.stages[0].retried == 2
        assert ex.report.failures == []

    def test_exhausted_retries_raise_by_default(self):
        plan = FaultPlan.from_indices(
            {0: FaultSpec(kind="error", fail_attempts=PERMANENT)}
        )
        with pytest.raises(FaultInjected):
            supervisor(retries=1, fault_plan=plan).run(make_cases(3))

    def test_supervised_run_matches_inline_when_nothing_fails(self):
        cases = make_cases(6)
        baseline = SweepExecutor(jobs=1).run(cases)
        supervised = supervisor(
            jobs=3, retries=2, timeout=60.0,
            failure_policy="retry-then-skip",
        ).run(cases)
        assert supervised == baseline


class TestSkipPolicies:
    def test_skip_leaves_hole_and_attributes_failure(self):
        cases = make_cases(5)
        plan = FaultPlan.from_indices(
            {2: FaultSpec(kind="error", fail_attempts=PERMANENT)}
        )
        ex = supervisor(failure_policy="skip", fault_plan=plan)
        results = ex.run(cases, stage="partial")
        assert results[2] is None
        assert [r["value"] for i, r in enumerate(results) if i != 2] == [
            0, 2, 6, 8
        ]
        [record] = ex.report.failures
        assert record.stage == "partial"
        assert record.label == "x=2"
        assert record.experiment == EXPERIMENT
        assert record.kind == "exception"
        assert record.attempts == 1
        assert ex.report.stages[0].failed == 1
        assert ex.report.stages[0].executed == 4

    def test_invalid_result_is_a_retryable_failure(self):
        plan = FaultPlan.from_indices(
            {1: FaultSpec(kind="corrupt", fail_attempts=1)}
        )
        ex = supervisor(retries=1, fault_plan=plan)
        results = ex.run(make_cases(3))
        assert [r["value"] for r in results] == [0, 2, 4]
        assert ex.report.stages[0].retried == 1

    def test_invalid_result_terminal_failure_kind(self):
        plan = FaultPlan.from_indices(
            {1: FaultSpec(kind="corrupt", fail_attempts=PERMANENT)}
        )
        ex = supervisor(failure_policy="skip", fault_plan=plan)
        results = ex.run(make_cases(3))
        assert results[1] is None
        assert ex.report.failures[0].kind == "invalid-result"


class TestDeadlineClock:
    def test_queue_wait_does_not_count_against_timeout(self):
        # 24 cases x 0.2s on 2 workers: the stage takes ~2.4s, well past
        # the 1.5s per-case deadline, but each case runs far inside it.
        # Only queue wait separates the two — it must not be charged
        # against the deadline (in-flight is capped at the worker
        # count, so submit time is start time).
        cases = make_cases(24, sleep=0.2)
        ex = supervisor(timeout=1.5)
        results = ex.run(cases, stage="queue-wait")
        assert all(r is not None for r in results)
        assert ex.report.failures == []
        assert ex.report.stages[0].wall_seconds > 1.5


class TestTimeout:
    def test_hung_case_times_out_and_neighbours_survive(self):
        cases = make_cases(5)
        plan = FaultPlan.from_indices(
            {1: FaultSpec(kind="hang", fail_attempts=PERMANENT,
                          hang_seconds=30.0)}
        )
        ex = supervisor(timeout=0.5, failure_policy="skip", fault_plan=plan)
        results = ex.run(cases, stage="hang")
        assert results[1] is None
        assert all(results[i] is not None for i in (0, 2, 3, 4))
        [record] = ex.report.failures
        assert record.kind == "timeout"
        assert record.label == "x=1"

    def test_transient_hang_retries_to_success(self):
        plan = FaultPlan.from_indices(
            {0: FaultSpec(kind="hang", fail_attempts=1, hang_seconds=30.0)}
        )
        ex = supervisor(timeout=0.5, retries=1, fault_plan=plan)
        results = ex.run(make_cases(3))
        assert [r["value"] for r in results] == [0, 2, 4]
        assert ex.report.stages[0].retried == 1

    def test_timeout_raises_under_raise_policy(self):
        plan = FaultPlan.from_indices(
            {0: FaultSpec(kind="hang", fail_attempts=PERMANENT,
                          hang_seconds=30.0)}
        )
        with pytest.raises(CaseTimeoutError):
            supervisor(timeout=0.4, fault_plan=plan).run(make_cases(2))


class TestBrokenPool:
    def test_worker_death_recovered_by_retry(self):
        plan = FaultPlan.from_indices(
            {2: FaultSpec(kind="die", fail_attempts=1)}
        )
        ex = supervisor(retries=2, fault_plan=plan)
        results = ex.run(make_cases(6), stage="die")
        assert [r["value"] for r in results] == [0, 2, 4, 6, 8, 10]
        assert ex.report.stages[0].retried >= 1
        assert ex.report.failures == []

    def test_worker_death_attributed_under_skip(self):
        cases = make_cases(6)
        plan = FaultPlan.from_indices(
            {3: FaultSpec(kind="die", fail_attempts=PERMANENT)}
        )
        ex = supervisor(failure_policy="skip", fault_plan=plan)
        results = ex.run(cases, stage="die")
        assert results[3] is None
        assert all(results[i] is not None for i in (0, 1, 2, 4, 5))
        [record] = ex.report.failures
        assert record.kind == "pool-broken"
        assert record.label == "x=3"

    def test_worker_death_raises_without_retry(self):
        plan = FaultPlan.from_indices(
            {0: FaultSpec(kind="die", fail_attempts=PERMANENT)}
        )
        with pytest.raises(BrokenProcessPool):
            supervisor(fault_plan=plan).run(make_cases(2))


class TestAcceptance:
    """The ISSUE 5 acceptance scenario, end to end."""

    def test_20pct_faults_partial_results_then_clean_resume(self, tmp_path):
        n = 20
        cases = make_cases(n)
        plan = FaultPlan.from_rate(
            n, 0.2, seed=3, kinds=("error",), fail_attempts=PERMANENT
        )
        faulted = set(plan.faulted_indices())
        assert 0 < len(faulted) < n  # the schedule actually bites

        baseline = SweepExecutor(jobs=1).run(cases)

        ex = supervisor(
            cache=ResultCache(tmp_path / "cache"),
            retries=1,
            failure_policy="retry-then-skip",
            fault_plan=plan,
        )
        results = ex.run(cases, stage="accept")

        # Every non-faulted case's result is byte-identical to the
        # fault-free run; every faulted case is a recorded hole.
        for i in range(n):
            if i in faulted:
                assert results[i] is None
            else:
                assert results[i] == baseline[i]
        assert {f.label for f in ex.report.failures} == {
            cases[i].label for i in faulted
        }
        assert ex.report.stages[0].failed == len(faulted)

        # Second invocation: resumes from manifest + cache, executing
        # only the skipped cases, and completes the sweep exactly.
        ex2 = supervisor(cache=ResultCache(tmp_path / "cache"))
        results2 = ex2.run(cases, stage="accept")
        assert results2 == baseline
        stats = ex2.report.stages[0]
        assert stats.executed == len(faulted)
        assert stats.cache_hits == n - len(faulted)
        # Only completed cases count as resumed; the faulted ones were
        # recorded as failed and are re-executed, not carried over.
        assert stats.resumed == n - len(faulted)


class TestBackoff:
    def test_backoff_grows_and_is_deterministic(self):
        ex = SweepExecutor(
            retries=3, backoff_base=0.1, backoff_max=1.0, backoff_jitter=0.5
        )
        first = [ex._backoff("k", attempt) for attempt in (1, 2, 3)]
        again = [ex._backoff("k", attempt) for attempt in (1, 2, 3)]
        assert first == again  # same case+attempt, same jitter
        assert first[0] < first[1] < first[2]
        assert all(0.1 <= d <= 1.5 for d in first)

    def test_backoff_caps_at_max(self):
        ex = SweepExecutor(
            retries=8, backoff_base=0.1, backoff_max=0.3, backoff_jitter=0.0
        )
        assert ex._backoff("k", 8) == pytest.approx(0.3)
