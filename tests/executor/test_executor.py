"""Unit tests for the process-pool sweep executor and its telemetry."""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.cases import Case
from repro.exec.executor import SweepExecutor, execute_cases
from repro.exec.report import RunReport, StageStats
from tests.executor.stub_experiment import EXPERIMENT


def make_cases(n, **extra):
    return [
        Case(experiment=EXPERIMENT, label=f"x={x}", params={"x": x, **extra})
        for x in range(n)
    ]


class TestSequential:
    def test_results_in_case_order(self):
        results = SweepExecutor(jobs=1).run(make_cases(5))
        assert [r["value"] for r in results] == [0, 2, 4, 6, 8]

    def test_execute_cases_without_executor_is_inline(self):
        results = execute_cases(make_cases(3))
        assert [r["value"] for r in results] == [0, 2, 4]

    def test_empty_case_list(self):
        ex = SweepExecutor(jobs=1)
        assert ex.run([], stage="empty") == []
        assert ex.report.stages[0].cases == 0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)


class TestParallel:
    def test_results_in_case_order(self):
        results = SweepExecutor(jobs=4).run(make_cases(12))
        assert [r["value"] for r in results] == [2 * x for x in range(12)]

    def test_matches_sequential(self):
        cases = make_cases(8)
        assert SweepExecutor(jobs=4).run(cases) == SweepExecutor(jobs=1).run(
            cases
        )

    def test_work_spreads_across_processes(self, tmp_path):
        log = tmp_path / "log"
        SweepExecutor(jobs=4).run(make_cases(8, log=str(log)))
        lines = log.read_text().splitlines()
        assert len(lines) == 8
        pids = {line.split("pid=")[1] for line in lines}
        assert len(pids) > 1

    def test_worker_exception_propagates(self):
        cases = make_cases(3) + [
            Case(experiment=EXPERIMENT, label="bad",
                 params={"x": 0, "explode": True})
        ]
        with pytest.raises(RuntimeError, match="boom"):
            SweepExecutor(jobs=2).run(cases)


class TestCaching:
    def test_second_run_hits_cache(self, tmp_path):
        log = tmp_path / "log"
        cache = ResultCache(tmp_path / "cache")
        cases = make_cases(4, log=str(log))

        first = SweepExecutor(jobs=1, cache=cache).run(cases, stage="cold")
        ex = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "cache"))
        second = ex.run(cases, stage="warm")

        assert first == second
        assert len(log.read_text().splitlines()) == 4  # nothing re-ran
        assert ex.report.stages[0].cache_hits == 4
        assert ex.report.stages[0].executed == 0

    def test_partial_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=cache).run(make_cases(2))
        ex = SweepExecutor(jobs=1, cache=cache)
        results = ex.run(make_cases(5), stage="partial")
        assert [r["value"] for r in results] == [0, 2, 4, 6, 8]
        assert ex.report.stages[0].cache_hits == 2
        assert ex.report.stages[0].executed == 3

    def test_parallel_run_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=3, cache=cache).run(make_cases(6))
        ex = SweepExecutor(jobs=3, cache=cache)
        ex.run(make_cases(6), stage="warm")
        assert ex.report.stages[0].cache_hits == 6


class TestReport:
    def test_accumulates_stages(self):
        report = RunReport(jobs=2)
        report.add(StageStats("a", 4, 1, 3, 1.0))
        report.add(StageStats("b", 2, 2, 0, 0.5))
        assert report.total_cases == 6
        assert report.total_cache_hits == 3
        assert report.total_executed == 3
        assert report.total_wall_seconds == pytest.approx(1.5)

    def test_to_dict_round_trips_json(self):
        import json

        report = RunReport(jobs=2)
        report.add(StageStats("a", 4, 1, 3, 1.0))
        data = json.loads(json.dumps(report.to_dict()))
        assert data["jobs"] == 2
        assert data["stages"][0]["name"] == "a"
        assert data["total"]["cases"] == 4

    def test_render_mentions_stages_and_totals(self):
        report = RunReport(jobs=4)
        report.add(StageStats("Figure 10", 8, 3, 5, 2.0))
        text = report.render()
        assert "jobs=4" in text
        assert "Figure 10" in text
        assert "8 cases, 3 cache hits" in text

    def test_render_empty(self):
        assert "no executor-managed stages" in RunReport().render()

    def test_hit_rate(self):
        assert StageStats("a", 4, 1, 3, 0.1).hit_rate == pytest.approx(0.25)
        assert StageStats("a", 0, 0, 0, 0.0).hit_rate == 0.0
