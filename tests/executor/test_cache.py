"""Unit tests for the on-disk result cache."""

import json

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.cases import Case, case_key
from tests.executor.stub_experiment import EXPERIMENT


def make_case(x=1):
    return Case(experiment=EXPERIMENT, label=f"x={x}", params={"x": x})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        assert cache.get(case) is None
        cache.put(case, {"value": 2})
        assert cache.get(case) == {"value": 2}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_different_params_do_not_alias(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_case(1), {"value": 2})
        assert cache.get(make_case(2)) is None

    def test_survives_reopen(self, tmp_path):
        ResultCache(tmp_path).put(make_case(), {"value": 2})
        assert ResultCache(tmp_path).get(make_case()) == {"value": 2}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        path = cache._path(case_key(case))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(case) is None

    def test_entry_records_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        payload = json.loads(
            cache._path(case_key(case)).read_text(encoding="utf-8")
        )
        assert payload["experiment"] == EXPERIMENT
        assert payload["label"] == case.label

    def test_git_style_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        key = case_key(case)
        assert (tmp_path / key[:2] / f"{key}.json").exists()

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == ".repro-cache"
