"""Unit tests for the on-disk result cache."""

import json

from repro.exec.cache import ResultCache, default_cache_dir
from repro.exec.cases import CACHE_SCHEMA_VERSION, Case, case_key
from tests.executor.stub_experiment import EXPERIMENT


def make_case(x=1):
    return Case(experiment=EXPERIMENT, label=f"x={x}", params={"x": x})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        assert cache.get(case) is None
        cache.put(case, {"value": 2})
        assert cache.get(case) == {"value": 2}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_different_params_do_not_alias(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_case(1), {"value": 2})
        assert cache.get(make_case(2)) is None

    def test_survives_reopen(self, tmp_path):
        ResultCache(tmp_path).put(make_case(), {"value": 2})
        assert ResultCache(tmp_path).get(make_case()) == {"value": 2}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        path = cache._path(case_key(case))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(case) is None

    def test_entry_records_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        payload = json.loads(
            cache._path(case_key(case)).read_text(encoding="utf-8")
        )
        assert payload["experiment"] == EXPERIMENT
        assert payload["label"] == case.label
        assert payload["schema"] == CACHE_SCHEMA_VERSION
        assert payload["key"] == case_key(case)
        assert payload["params"] == case.params

    def test_git_style_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        key = case_key(case)
        assert (tmp_path / key[:2] / f"{key}.json").exists()

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == ".repro-cache"


class TestQuarantine:
    """Corrupt entries are moved aside, not silently treated as misses."""

    def corrupt_entry(self, cache, case, text="{torn"):
        path = cache._path(case_key(case))
        path.write_text(text, encoding="utf-8")
        return path

    def test_corrupt_distinguished_from_absent(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        assert cache.get(case) is None  # absent
        assert (cache.misses, cache.corrupt) == (1, 0)
        cache.put(case, {"value": 2})
        self.corrupt_entry(cache, case)
        assert cache.get(case) is None  # corrupt
        assert (cache.misses, cache.corrupt) == (1, 1)
        # The damaged file is gone, so the next read is a clean miss.
        assert cache.get(case) is None
        assert (cache.misses, cache.corrupt) == (2, 1)

    def test_corrupt_entry_moved_to_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        path = self.corrupt_entry(cache, case)
        cache.get(case)
        assert not path.exists()
        quarantined = list(cache.quarantine_root.iterdir())
        assert [p.name for p in quarantined] == [path.name]
        assert quarantined[0].read_text(encoding="utf-8") == "{torn"

    def test_repeated_quarantine_never_overwrites_evidence(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        for round_ in range(3):
            cache.put(case, {"value": round_})
            self.corrupt_entry(cache, case, text=f"{{torn {round_}")
            assert cache.get(case) is None
        assert len(list(cache.quarantine_root.iterdir())) == 3

    def test_key_mismatch_is_corrupt(self, tmp_path):
        """A renamed/aliased file must not masquerade as another case."""
        cache = ResultCache(tmp_path)
        a, b = make_case(1), make_case(2)
        cache.put(a, {"value": 1})
        path_b = cache._path(case_key(b))
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(cache._path(case_key(a)).read_bytes())
        assert cache.get(b) is None
        assert cache.corrupt == 1
        assert cache.get(a) == {"value": 1}  # the real entry is untouched

    def test_stale_schema_is_orphaned_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        path = cache._path(case_key(case))
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = CACHE_SCHEMA_VERSION + 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(case) is None
        assert (cache.stale, cache.corrupt) == (1, 0)
        assert path.exists()  # left in place for gc

    def test_legacy_unversioned_entry_is_stale(self, tmp_path):
        cache = ResultCache(tmp_path)
        case = make_case()
        path = cache._path(case_key(case))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"experiment": EXPERIMENT, "label": case.label,
                        "result": {"value": 2}}),
            encoding="utf-8",
        )
        assert cache.get(case) is None
        assert cache.stale == 1


class TestConcurrentMutation:
    """A concurrent runner's quarantine/gc can unlink an entry between
    the directory listing (or ``is_file`` check) and the open; that race
    must read as an ordinary miss / skip, never crash the sweep."""

    def vanish_on_load(self, monkeypatch):
        def gone(path, expected_key):
            raise FileNotFoundError(path)

        monkeypatch.setattr(ResultCache, "_load_entry", staticmethod(gone))

    def test_get_counts_a_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        case = make_case()
        cache.put(case, {"value": 2})
        self.vanish_on_load(monkeypatch)
        assert cache.get(case) is None
        assert (cache.misses, cache.corrupt) == (1, 0)

    def test_verify_skips_vanished_entries(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put(make_case(), {"value": 2})
        self.vanish_on_load(monkeypatch)
        assert cache.verify() == {
            "checked": 0, "ok": 0, "corrupt": 0, "stale": 0
        }

    def test_gc_and_stats_survive_vanished_entries(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        cache.put(make_case(), {"value": 2})
        self.vanish_on_load(monkeypatch)
        assert cache.gc()["removed_entries"] == 0
        assert cache.stats()["experiments"] == {}


class TestMaintenance:
    def populate(self, tmp_path, n=3):
        cache = ResultCache(tmp_path)
        for x in range(n):
            cache.put(make_case(x), {"value": 2 * x})
        return cache

    def test_verify_clean_store(self, tmp_path):
        cache = self.populate(tmp_path)
        assert cache.verify() == {
            "checked": 3, "ok": 3, "corrupt": 0, "stale": 0
        }

    def test_verify_quarantines_damage(self, tmp_path):
        cache = self.populate(tmp_path)
        cache._path(case_key(make_case(0))).write_text("x", encoding="utf-8")
        outcome = cache.verify()
        assert outcome["corrupt"] == 1
        assert outcome["ok"] == 2
        assert len(list(cache.quarantine_root.iterdir())) == 1
        # And a re-verify is clean.
        assert cache.verify()["corrupt"] == 0

    def test_gc_reaps_quarantine_and_stale(self, tmp_path):
        cache = self.populate(tmp_path)
        cache._path(case_key(make_case(0))).write_text("x", encoding="utf-8")
        cache.verify()
        path = cache._path(case_key(make_case(1)))
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        outcome = cache.gc()
        assert outcome == {"removed_entries": 1, "removed_quarantine": 1}
        assert cache.get(make_case(2)) == {"value": 4}  # valid survives

    def test_gc_age_horizon(self, tmp_path):
        import os
        import time

        cache = self.populate(tmp_path, n=2)
        old = cache._path(case_key(make_case(0)))
        ancient = time.time() - 10 * 86400
        os.utime(old, (ancient, ancient))
        outcome = cache.gc(max_age_days=1.0)
        assert outcome["removed_entries"] == 1
        assert cache.get(make_case(1)) == {"value": 2}

    def test_stats_shape(self, tmp_path):
        cache = self.populate(tmp_path)
        cache._path(case_key(make_case(0))).write_text("x", encoding="utf-8")
        cache.get(make_case(0))  # quarantines
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["quarantined"] == 1
        assert stats["bytes"] > 0
        assert stats["experiments"] == {EXPERIMENT: 2}
