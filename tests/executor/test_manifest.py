"""Unit tests for the crash-safe stage manifest journal."""

import json

from repro.exec.manifest import StageManifest


def manifest(tmp_path, keys=("k1", "k2", "k3"), stage="Figure 10"):
    return StageManifest.for_stage(tmp_path, stage, keys)


class TestJournal:
    def test_round_trip(self, tmp_path):
        m = manifest(tmp_path)
        m.done("k1", label="a")
        m.failed("k2", label="b", kind="timeout", error="too slow")
        entries = m.load()
        assert entries["k1"]["status"] == "done"
        assert entries["k2"] == {
            "status": "failed", "label": "b", "kind": "timeout",
            "error": "too slow",
        }

    def test_latest_status_wins(self, tmp_path):
        m = manifest(tmp_path)
        m.failed("k1", kind="exception", error="boom")
        m.done("k1")
        assert m.load()["k1"]["status"] == "done"
        assert m.completed_keys() == {"k1"}
        assert m.failed_entries() == {}

    def test_missing_file_loads_empty(self, tmp_path):
        assert manifest(tmp_path).load() == {}
        assert manifest(tmp_path).completed_keys() == set()

    def test_torn_final_line_is_ignored(self, tmp_path):
        m = manifest(tmp_path)
        m.done("k1")
        m.done("k2")
        with m.path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "status": "do')  # crash mid-append
        entries = m.load()
        assert set(entries) == {"k1", "k2"}

    def test_garbage_lines_are_skipped(self, tmp_path):
        m = manifest(tmp_path)
        m.done("k1")
        with m.path.open("a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps(["a", "list"]) + "\n")
            fh.write(json.dumps({"no_key_field": 1}) + "\n")
        m.done("k2")
        assert set(m.load()) == {"k1", "k2"}

    def test_clear_forgets_the_ledger(self, tmp_path):
        m = manifest(tmp_path)
        m.done("k1")
        m.clear()
        assert m.load() == {}
        m.clear()  # idempotent on a missing file


class TestIdentity:
    def test_same_stage_and_cases_share_a_path(self, tmp_path):
        a = manifest(tmp_path, keys=("x", "y"))
        b = manifest(tmp_path, keys=("y", "x"))  # order-insensitive
        assert a.path == b.path

    def test_different_case_sets_get_fresh_ledgers(self, tmp_path):
        a = manifest(tmp_path, keys=("x", "y"))
        b = manifest(tmp_path, keys=("x", "z"))
        assert a.path != b.path

    def test_different_stages_get_fresh_ledgers(self, tmp_path):
        a = manifest(tmp_path, stage="Figure 10")
        b = manifest(tmp_path, stage="Figure 11")
        assert a.path != b.path

    def test_stage_names_are_slugged(self, tmp_path):
        m = manifest(tmp_path, stage="Fluid validation / fig 3!")
        assert m.path.parent == tmp_path / "manifests"
        assert "/" not in m.path.name.replace(".jsonl", "")
        m.done("k1")  # and the path is actually writable
        assert m.load()

    def test_summary_counts(self, tmp_path):
        m = manifest(tmp_path)
        assert m.summary() is None
        m.done("k1")
        m.failed("k2")
        assert "1 done, 1 failed" in m.summary()
