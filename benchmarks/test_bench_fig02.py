"""Benchmark: Figure 2 — the two marking strategies on one excursion."""

import pytest

from repro.experiments import fig02_marking


def test_fig02_marking_strategies(run_once):
    dc, dt = run_once(fig02_marking.run)
    print(
        f"\nFigure 2: DCTCP marks {dc.mark_start_level:.0f}->"
        f"{dc.mark_stop_level:.0f}; DT-DCTCP marks "
        f"{dt.mark_start_level:.0f}->{dt.mark_stop_level:.0f}"
    )
    assert dc.mark_start_level == pytest.approx(40.0, abs=1.0)
    assert dt.mark_start_level == pytest.approx(30.0, abs=1.0)
    assert dt.mark_stop_level == pytest.approx(50.0, abs=1.0)
