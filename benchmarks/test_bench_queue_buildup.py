"""Extension benchmark: the queue-buildup microbenchmark.

Short-flow latency under background load — the Section II-A claim that
ECN marking protects latency-sensitive traffic, with DT-DCTCP's steadier
(and slightly lower) queue giving the best tail.
"""

from repro.experiments import queue_buildup


def test_queue_buildup_short_flow_latency(run_once):
    results = run_once(queue_buildup.run)
    by_name = {r.protocol: r for r in results}
    rows = {
        name: (round(r.mean_queue, 1), round(r.mean_fct * 1e6),
               round(r.p99_fct * 1e6))
        for name, r in by_name.items()
    }
    print(f"\nQueue buildup (mean q, mean FCT us, p99 FCT us): {rows}")
    droptail = by_name["DropTail-Reno"]
    dctcp = by_name["DCTCP"]
    dt = by_name["DT-DCTCP"]
    # ECN mechanisms keep short-flow latency well below DropTail's.
    assert dctcp.mean_fct < droptail.mean_fct / 1.5
    assert dt.mean_fct < droptail.mean_fct / 1.5
    # ... because their standing queues are an order of magnitude lower.
    assert dctcp.mean_queue < droptail.mean_queue / 5
    # DT-DCTCP's queue is the lowest of the three.
    assert dt.mean_queue <= dctcp.mean_queue
