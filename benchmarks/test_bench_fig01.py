"""Benchmark: Figure 1 — DCTCP queue oscillation, N = 10 vs N = 100.

Regenerates the two queue time series and checks the paper's claim that
the oscillation amplitude grows severalfold with the flow count.
"""

from repro.experiments import fig01_oscillation


def test_fig01_queue_oscillation(run_once, bench_scale):
    """N = 10 vs N = 40: the top of the ECN-controlled regime.

    On the paper's pipe (R0*C ~ 83 packets) flow counts beyond ~42 push
    every flow onto its minimum window; there the queue sits flat at
    ``N*w - BDP`` instead of oscillating (see EXPERIMENTS.md), so the
    growing-amplitude claim is asserted across the regime where DCTCP's
    operating point exists.  The companion run below reports the
    saturated N = 100 point for the record.
    """
    result = run_once(
        fig01_oscillation.run, bench_scale, n_small=10, n_large=40
    )
    saturated = fig01_oscillation.run(bench_scale, n_small=10, n_large=100)
    print(
        f"\nFigure 1: amplitude N=10 {result.amplitude_small:.1f} pkts, "
        f"N=40 {result.amplitude_large:.1f} pkts "
        f"(ratio {result.amplitude_ratio:.1f}x; paper reports 3-4x at "
        f"N=100); saturated N=100 amplitude "
        f"{saturated.amplitude_large:.1f} pkts around mean level "
        f"{saturated.trace_large[1].mean():.0f}"
    )
    assert result.amplitude_large > 1.5 * result.amplitude_small
    assert result.std_large > result.std_small
