"""Extension benchmark: SACK versus NewReno recovery in incast.

Incast collapse is driven by full-window losses that only an RTO can
recover; SACK cannot prevent those, but it converts many partial-loss
queries (several holes in one window) from multi-RTT NewReno crawls —
or outright timeouts — into single-RTT repairs.  The bench measures
goodput around the collapse point with and without SACK.
"""

from repro.experiments.fig14_incast import (
    TESTBED_INITIAL_CWND,
    TESTBED_START_JITTER,
)
from repro.experiments.protocols import dctcp_testbed
from repro.sim.apps.incast import FanInApp
from repro.sim.topology import paper_testbed

KB = 1024


def incast_goodput(n_flows, use_sack, queries=10):
    protocol = dctcp_testbed()
    testbed = paper_testbed(protocol.marker_factory)
    app = FanInApp(
        testbed.aggregator,
        testbed.workers,
        n_flows=n_flows,
        bytes_per_flow=64 * KB,
        n_queries=queries,
        sender_cls=protocol.sender_cls,
        initial_cwnd=TESTBED_INITIAL_CWND,
        start_jitter=TESTBED_START_JITTER,
        use_sack=use_sack,
    )
    app.start()
    testbed.sim.run(until=60.0 * queries)
    timeouts = sum(r.timeouts for r in app.results)
    return app.overall_goodput_bps(), timeouts


def test_sack_vs_newreno_incast(run_once):
    def sweep():
        rows = {}
        for n in (30, 34, 36, 38, 42):
            rows[n] = (incast_goodput(n, False), incast_goodput(n, True))
        return rows

    rows = run_once(sweep)
    printable = {
        n: {
            "newreno": (round(nr[0] / 1e6), nr[1]),
            "sack": (round(sk[0] / 1e6), sk[1]),
        }
        for n, (nr, sk) in rows.items()
    }
    print(f"\nIncast (Mbps, timeouts) by recovery: {printable}")
    # SACK never times out more than NewReno at any fan-out...
    for n, (newreno, sack) in rows.items():
        assert sack[1] <= newreno[1] * 1.2 + 2
    # ... and never loses goodput materially.
    for n, (newreno, sack) in rows.items():
        assert sack[0] >= newreno[0] * 0.8
