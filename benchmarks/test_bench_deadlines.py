"""Extension benchmark: D2TCP's deadline awareness over this substrate.

Three 2 MB transfers with an 11 ms deadline (infeasible at fair share,
~13.5 ms) against five loose ones: deadline-blind DCTCP misses all
three; D2TCP's gamma-corrected penalties deliver them, costing the
loose group about a millisecond.
"""

from repro.experiments import deadlines


def test_deadline_awareness(run_once):
    results = run_once(deadlines.run)
    by_name = {r.protocol: r for r in results}
    dctcp = by_name["DCTCP"]
    d2tcp = by_name["D2TCP"]
    print(
        f"\nDeadlines: DCTCP tight {dctcp.tight_met}/{dctcp.tight_total} "
        f"(mean {dctcp.tight_mean_fct*1e3:.1f} ms), D2TCP tight "
        f"{d2tcp.tight_met}/{d2tcp.tight_total} "
        f"(mean {d2tcp.tight_mean_fct*1e3:.1f} ms)"
    )
    # Deadline-blind sharing misses the infeasible tight deadline...
    assert dctcp.tight_met == 0
    # ... D2TCP meets strictly more, without losing the loose group.
    assert d2tcp.tight_met > dctcp.tight_met
    assert d2tcp.loose_met == d2tcp.loose_total
    assert d2tcp.tight_mean_fct < dctcp.tight_mean_fct
