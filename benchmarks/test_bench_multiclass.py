"""Extension benchmark: fluid-level RTT heterogeneity.

The multi-class fluid model generalises Eq. 1-3 to several RTT groups
sharing the bottleneck; the bench verifies the paper's stability
ordering survives the spread, at several mixes.
"""

from repro.core.marking import DoubleThresholdMarker, SingleThresholdMarker
from repro.fluid import FlowClass, MultiClassModel, simulate_multiclass

CAPACITY = 10e9 / (8 * 1500)


def measure(marker, classes):
    model = MultiClassModel(CAPACITY, classes, marker)
    trace = simulate_multiclass(model, duration=0.05).after(0.02)
    return trace.mean_queue, trace.std_queue, trace.class_throughput().sum()


def test_multiclass_fluid_heterogeneity(run_once):
    def sweep():
        mixes = {
            "homogeneous": [FlowClass(10, 1e-4)],
            "2x spread": [FlowClass(5, 1e-4), FlowClass(5, 2e-4)],
            "4x spread": [FlowClass(5, 0.5e-4), FlowClass(5, 2e-4)],
            "3 classes": [
                FlowClass(4, 0.7e-4),
                FlowClass(3, 1e-4),
                FlowClass(3, 2e-4),
            ],
        }
        rows = {}
        for label, classes in mixes.items():
            dc = measure(SingleThresholdMarker.from_threshold(40.0), classes)
            dt = measure(
                DoubleThresholdMarker.from_thresholds(30.0, 50.0), classes
            )
            rows[label] = (dc, dt)
        return rows

    rows = run_once(sweep)
    printable = {
        label: {"dc std": round(dc[1], 2), "dt std": round(dt[1], 2)}
        for label, (dc, dt) in rows.items()
    }
    print(f"\nMulticlass fluid: {printable}")
    for label, (dc, dt) in rows.items():
        # DT-DCTCP steadier at every RTT mix...
        assert dt[1] < dc[1], label
        # ... with the pipe kept full by both.
        assert dc[2] > 0.85 * CAPACITY
        assert dt[2] > 0.85 * CAPACITY
