"""Benchmark: Figure 4 — DF stability-criterion trichotomy."""

from repro.experiments import fig04_criterion


def test_fig04_criterion_trichotomy(run_once):
    cases = run_once(fig04_criterion.run)
    print("\nFigure 4:", [(c.loop_gain_scale, c.classification) for c in cases])
    assert cases[0].classification == "stable"
    assert any(c.classification == "limit cycle" for c in cases)
