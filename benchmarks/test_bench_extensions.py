"""Extension benchmarks beyond the paper's figures.

* **convergence/fairness** — the marking change must not break DCTCP's
  TCP-friendliness (Section II-A background);
* **min-RTO sweep** — the incast blow-up magnitude is exactly the
  minimum RTO; shrinking it (the classic incast mitigation) shrinks the
  completion-time jump proportionally;
* **delayed-ACK sweep** — DCTCP's receiver state machine keeps the
  marked-fraction estimate accurate under ACK coalescing.
"""

import pytest

from repro.experiments import convergence
from repro.experiments.protocols import dctcp_sim, dctcp_testbed
from repro.sim.apps.bulk import launch_bulk_flows
from repro.sim.apps.partition_aggregate import partition_aggregate_app
from repro.sim.topology import dumbbell, paper_testbed
from repro.sim.trace import QueueMonitor


def test_extension_convergence_fairness(run_once):
    dc, dt = run_once(convergence.run)
    print(
        f"\nConvergence: DCTCP fairness {dc.steady_fairness:.3f} "
        f"joiner {dc.joiner_relative_share:.2f}; DT-DCTCP "
        f"{dt.steady_fairness:.3f} / {dt.joiner_relative_share:.2f}"
    )
    for result in (dc, dt):
        assert result.steady_fairness > 0.95
        assert 0.5 < result.joiner_relative_share < 1.5
        assert result.utilisation > 0.9


def test_extension_min_rto_sweep(run_once):
    """Post-collapse completion time tracks the configured min-RTO."""

    def sweep():
        rows = {}
        for min_rto in (0.01, 0.05, 0.2):
            testbed = paper_testbed(dctcp_testbed().marker_factory)
            app = partition_aggregate_app(
                testbed.aggregator,
                testbed.workers,
                n_flows=40,  # solidly past the collapse point
                n_queries=5,
                initial_cwnd=2,
                start_jitter=50e-6,
                min_rto=min_rto,
            )
            app.start()
            testbed.sim.run(until=20.0)
            times = app.completion_times()
            rows[min_rto] = sum(times) / len(times)
        return rows

    rows = run_once(sweep)
    printable = {k: round(v * 1e3, 1) for k, v in rows.items()}
    print(f"\nmin-RTO -> mean completion (ms): {printable}")
    # Completion time ordered by (and dominated by) the min-RTO.
    assert rows[0.01] < rows[0.05] < rows[0.2]
    assert rows[0.2] == pytest.approx(0.2 + 0.0085, rel=0.35)


def test_extension_delayed_ack_sweep(run_once):
    """Queue regulation and alpha accuracy survive ACK coalescing."""

    def sweep():
        rows = {}
        for delack in (1, 2):
            protocol = dctcp_sim()
            network = dumbbell(10, protocol.marker_factory)
            flows = launch_bulk_flows(
                network, sender_cls=protocol.sender_cls,
                delayed_ack_factor=delack,
            )
            monitor = QueueMonitor(
                network.sim, network.bottleneck_queue, 20e-6
            )
            monitor.start()
            network.sim.run(until=0.03)
            queue = monitor.series(after=0.012)
            marked_fraction = (
                network.bottleneck_queue.stats.marked
                / max(network.bottleneck_queue.stats.enqueued, 1)
            )
            alphas = [f.sender.alpha for f in flows]
            rows[delack] = (
                float(queue.mean()),
                sum(alphas) / len(alphas),
                marked_fraction,
            )
        return rows

    rows = run_once(sweep)
    print(f"\ndelack -> (mean q, alpha, marked fraction): {rows}")
    for delack, (mean_q, alpha, marked) in rows.items():
        assert 20 < mean_q < 70
        # alpha tracks the switch's actual marking fraction.
        assert alpha == pytest.approx(marked, abs=0.2)
