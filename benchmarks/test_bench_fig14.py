"""Benchmark: Figure 14 — incast throughput collapse.

The paper reports DCTCP collapsing at 32 synchronized flows and
DT-DCTCP surviving to 37.  The reproduced sweep must show a sharp
collapse for both, with DT-DCTCP's collapse point strictly later.
"""

from repro.experiments import fig14_incast


def test_fig14_incast_collapse(run_once, bench_scale):
    result = run_once(fig14_incast.run, bench_scale)
    dc_collapse = result.collapse_flows("DCTCP")
    dt_collapse = result.collapse_flows("DT-DCTCP")
    rows = [
        (a.n_flows, round(a.goodput_bps / 1e6), round(b.goodput_bps / 1e6))
        for a, b in zip(result.points["DCTCP"], result.points["DT-DCTCP"])
    ]
    print(f"\nFigure 14 (n, dc Mbps, dt Mbps): {rows}")
    print(
        f"collapse: DCTCP {dc_collapse}, DT-DCTCP {dt_collapse} "
        "(paper: 32 vs 37)"
    )
    assert dc_collapse is not None
    # DT-DCTCP postpones the collapse (or escapes it within the sweep).
    assert dt_collapse is None or dt_collapse > dc_collapse
    # Pre-collapse goodput is near line rate for both.
    for points in result.points.values():
        assert points[0].goodput_bps > 0.9 * result.line_rate_bps
