"""Benchmark-suite configuration.

Every benchmark regenerates one paper table/figure through the
experiment harness and asserts its qualitative claim.  The heavy DES /
DDE runs are executed exactly once per benchmark (``rounds=1``) — the
interesting number is the figure's content, not the harness's wall
clock, and re-running a 30-second sweep five times buys nothing.
"""

import pytest

from repro.experiments.config import Scale


@pytest.fixture
def run_once(benchmark):
    """benchmark.pedantic with a single round, returning fn's result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


@pytest.fixture
def bench_scale() -> Scale:
    """Benchmark-sized sweeps: the paper's structure, CI-friendly cost."""
    return Scale(
        sim_duration=0.03,
        warmup=0.012,
        sample_interval=20e-6,
        flow_counts=(10, 25, 40, 55, 70, 85, 100),
        n_queries=10,
        incast_flows=(16, 24, 30, 32, 33, 34, 35, 36, 40),
        completion_flows=(16, 24, 30, 32, 33, 34, 35, 36, 40),
        fluid_duration=0.06,
    )
