"""Benchmark: Figures 6 and 8 — describing functions (Eq. 22 / 27).

Closed form vs numeric Fourier integration vs the live marker objects.
"""

from repro.experiments import fig06_08_df


def test_fig06_08_describing_functions(run_once):
    rows = run_once(fig06_08_df.run)
    worst = max(max(r.numeric_error, r.marker_error) for r in rows)
    print(f"\nFigures 6/8: {len(rows)} DF evaluations, worst error {worst:.2e}")
    assert worst < 1e-3
