"""Benchmark: Figure 7 — Nyquist loci geometry."""

import math

import pytest

from repro.experiments import fig07_nyquist_loci


def test_fig07_nyquist_loci(run_once):
    dc, dt = run_once(fig07_nyquist_loci.run)
    print(
        f"\nFigure 7: DCTCP rightmost -1/N0 = {dc.df_rightmost.real:.3f} "
        f"(= -pi); DT-DCTCP rightmost = {dt.df_rightmost.real:.3f}"
        f"{dt.df_rightmost.imag:+.3f}j"
    )
    assert dc.df_rightmost.real == pytest.approx(-math.pi, rel=1e-3)
    assert dt.df_min_imag > 0.0
