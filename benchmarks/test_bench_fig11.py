"""Benchmark: Figure 11 — queue standard deviation versus flow count.

The paper's claim: both std-devs grow with N, DT-DCTCP's is smaller at
every flow count.
"""

from repro.experiments import fig11_std_dev


def test_fig11_std_dev_paper_pipe(run_once, bench_scale):
    sweep = run_once(fig11_std_dev.run, bench_scale)
    dc = [(p.n_flows, round(p.std_queue, 2)) for p in sweep.points["DCTCP"]]
    dt = [(p.n_flows, round(p.std_queue, 2)) for p in sweep.points["DT-DCTCP"]]
    print(f"\nFigure 11 (paper pipe): DCTCP {dc}\n             DT-DCTCP {dt}")
    # Oscillation grows through the ECN-controlled regime (it saturates
    # flat beyond N ~ 42 on this pipe - see EXPERIMENTS.md).
    dc_stds = [p.std_queue for p in sweep.points["DCTCP"]]
    assert max(dc_stds) > 1.5 * dc_stds[0]
    assert sweep.fraction_dt_not_worse() >= 0.7


def test_fig11_std_dev_deep_pipe(run_once, bench_scale):
    sweep = run_once(fig11_std_dev.run, bench_scale, rtt=400e-6)
    frac = sweep.fraction_dt_not_worse()
    print(f"\nFigure 11 (deep pipe): DT not worse at {frac:.0%} of points")
    assert sweep.grows_with_n("DCTCP")
    assert sweep.grows_with_n("DT-DCTCP")
    assert frac >= 0.7
