"""Extension benchmark: does DT-DCTCP's advantage survive RTT spread?

The paper's analysis assumes one common RTT; real racks do not have
one.  This bench staggers flow start times (which desynchronises the
window sawteeth the way heterogeneous RTTs do) and compares the queue
statistics — DT-DCTCP's std-dev advantage should not depend on the
perfectly synchronized start the other experiments use.
"""

from repro.experiments.protocols import dctcp_sim, dt_dctcp_sim
from repro.sim.apps.bulk import launch_bulk_flows
from repro.sim.topology import dumbbell
from repro.sim.trace import QueueMonitor

DURATION = 0.03
WARMUP = 0.012


def measure(protocol, jitter):
    network = dumbbell(10, protocol.marker_factory)
    launch_bulk_flows(
        network,
        sender_cls=protocol.sender_cls,
        start_jitter=jitter,
        jitter_seed=11,
    )
    monitor = QueueMonitor(network.sim, network.bottleneck_queue, 20e-6)
    monitor.start()
    network.sim.run(until=DURATION)
    queue = monitor.series(after=WARMUP)
    return float(queue.mean()), float(queue.std())


def test_desynchronized_starts(run_once):
    def sweep():
        rows = {}
        for jitter in (0.0, 500e-6, 2e-3):
            dc = measure(dctcp_sim(), jitter)
            dt = measure(dt_dctcp_sim(), jitter)
            rows[jitter] = (dc, dt)
        return rows

    rows = run_once(sweep)
    printable = {
        f"{j*1e6:.0f}us": (round(dc[1], 2), round(dt[1], 2))
        for j, (dc, dt) in rows.items()
    }
    print(f"\njitter -> (DCTCP std, DT-DCTCP std): {printable}")
    for jitter, (dc, dt) in rows.items():
        # Both stay regulated near the setpoint...
        assert 20 < dc[0] < 70
        assert 20 < dt[0] < 70
        # ... and DT-DCTCP stays at least as steady at every jitter.
        assert dt[1] <= dc[1] * 1.1
