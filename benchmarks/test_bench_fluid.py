"""Benchmark: fluid-model counterparts of Figures 1/10/11.

Integrates the nonlinear DDE (Eq. 1-3) for both marking mechanisms and
checks the paper's stability ordering at the fluid level, plus the
DF-predicted oscillation frequency landing in the band the fluid model
actually exhibits.
"""

from repro.experiments import fluid_validation


def test_fluid_model_vs_df_theory(run_once, bench_scale):
    points = run_once(
        fluid_validation.run, bench_scale, (10, 20, 30, 40)
    )
    rows = [
        (p.n_flows, round(p.dc_std, 2), round(p.dt_std, 2),
         round(p.dc_frequency))
        for p in points
    ]
    print(f"\nFluid (N, dc std, dt std, dc freq rad/s): {rows}")
    # DT-DCTCP's fluid queue is steadier at every valid flow count.
    for p in points:
        assert p.dt_std < p.dc_std
    # Oscillation grows with N within the valid regime.
    assert points[-1].dc_std > points[0].dc_std * 0.8
    # Fluid oscillation frequency in the DF band (~1e3..1e5 rad/s).
    for p in points:
        assert 5e2 < p.dc_frequency < 1e5
