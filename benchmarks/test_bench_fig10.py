"""Benchmark: Figure 10 — average queue length versus flow count.

Runs the paper-parameter sweep and the deep-pipe variant (see
EXPERIMENTS.md for why both).  The assertable claim: in the regime where
ECN, not the minimum window, governs behaviour, DT-DCTCP's normalised
mean stays at least as flat as DCTCP's.
"""

from repro.experiments import fig10_avg_queue


def test_fig10_average_queue_paper_pipe(run_once, bench_scale):
    sweep = run_once(fig10_avg_queue.run, bench_scale)
    dc = sweep.normalized("DCTCP")
    dt = sweep.normalized("DT-DCTCP")
    print(f"\nFigure 10 (paper pipe): DCTCP {dc}\n            DT-DCTCP {dt}")
    # Baselines regulate near the setpoint.
    assert 25 < sweep.baseline("DCTCP") < 60
    assert 25 < sweep.baseline("DT-DCTCP") < 60


def test_fig10_average_queue_deep_pipe(run_once, bench_scale):
    sweep = run_once(fig10_avg_queue.run, bench_scale, rtt=400e-6)
    print(
        f"\nFigure 10 (deep pipe): max deviation DCTCP "
        f"{sweep.max_deviation('DCTCP'):.2f}, DT-DCTCP "
        f"{sweep.max_deviation('DT-DCTCP'):.2f}"
    )
    # Queue inflation with N is physics (more flows need more standing
    # queue); the reproduction bounds it rather than ordering it - see
    # EXPERIMENTS.md for the deviation from the paper's flatness claim.
    for name in ("DCTCP", "DT-DCTCP"):
        points = sweep.points[name]
        assert points[-1].mean_queue > points[0].mean_queue
        assert sweep.max_deviation(name) < 3.0
