"""Extension benchmark: the bias-corrected DF against the packet sim.

Parameter-free (no calibrated gain anywhere): centring the DF's test
signal at the threshold — where the closed loop actually holds the
queue — predicts a limit cycle at every N with amplitude
``2 K |K0 G(j w180)| / pi``.  The bench checks existence, scale, and
trend against the packet-level measurement.
"""

from repro.experiments import df_bias


def test_bias_corrected_df_predicts_simulation(run_once, bench_scale):
    points = run_once(df_bias.run, bench_scale, (10, 20, 30, 40))
    rows = [
        (p.n_flows, round(p.predicted_amplitude, 1),
         round(p.measured_amplitude, 1), round(p.amplitude_ratio, 2),
         p.predicted_dt_amplitude, round(p.measured_dt_amplitude, 1))
        for p in points
    ]
    print(f"\nBias-corrected DF (N, DC X*, DC X, ratio, DT X*, DT X): {rows}")
    for p in points:
        # Existence and scale: measured within ~2x of the prediction.
        assert 0.5 < p.amplitude_ratio < 2.5
        # Frequencies in the same band.
        assert 0.5 < p.measured_frequency / p.predicted_frequency < 2.0
        # DT-DCTCP: either no predicted cycle (stable) or a smaller one,
        # and the measured DT oscillation never exceeds DCTCP's.
        if p.predicted_dt_amplitude is not None:
            assert p.predicted_dt_amplitude <= p.predicted_amplitude
        assert p.measured_dt_amplitude <= p.measured_amplitude * 1.05
    # Both series grow through the ECN-controlled regime.
    predicted = [p.predicted_amplitude for p in points]
    measured = [p.measured_amplitude for p in points]
    assert predicted == sorted(predicted)
    assert measured[-1] > measured[0]
