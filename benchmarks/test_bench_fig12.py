"""Benchmark: Figure 12 — the congestion-extent estimate alpha versus N.

The paper's claim: alpha grows with N for both protocols (the network
gets more congested) and DT-DCTCP's alpha stays at or below DCTCP's.
"""

from repro.experiments import fig12_alpha


def test_fig12_alpha_paper_pipe(run_once, bench_scale):
    sweep = run_once(fig12_alpha.run, bench_scale)
    rows = [
        (a.n_flows, round(a.mean_alpha, 3), round(b.mean_alpha, 3))
        for a, b in zip(sweep.points["DCTCP"], sweep.points["DT-DCTCP"])
    ]
    print(f"\nFigure 12 (N, alpha_dc, alpha_dt): {rows}")
    assert sweep.grows_with_n("DCTCP")
    assert sweep.grows_with_n("DT-DCTCP")
    assert sweep.fraction_dt_not_higher() >= 0.7


def test_fig12_alpha_deep_pipe(run_once, bench_scale):
    sweep = run_once(fig12_alpha.run, bench_scale, rtt=400e-6)
    frac = sweep.fraction_dt_not_higher()
    print(f"\nFigure 12 (deep pipe): DT alpha not higher at {frac:.0%}")
    assert frac >= 0.7
