"""Benchmark: Figure 15 — partition-aggregate query completion time.

The paper reports ~10 ms completion until incast, then a ~20x jump (one
200 ms minimum RTO); DCTCP degrades flows earlier than DT-DCTCP.
"""

import pytest

from repro.experiments import fig15_completion_time


def test_fig15_completion_time(run_once, bench_scale):
    result = run_once(fig15_completion_time.run, bench_scale)
    rows = [
        (a.n_flows, round(a.mean_time * 1e3, 1), round(b.mean_time * 1e3, 1))
        for a, b in zip(
            result.points["DCTCP"], result.points["DT-DCTCP"]
        )
    ]
    print(f"\nFigure 15 (n, dc ms, dt ms): {rows}")
    dc_blowup = result.blowup_flows("DCTCP")
    dt_blowup = result.blowup_flows("DT-DCTCP")
    print(
        f"blow-up: DCTCP {dc_blowup}, DT-DCTCP {dt_blowup} "
        "(paper: DCTCP oscillating from 34, collapsed at 40; DT-DCTCP 42)"
    )
    # Base completion ~ the 1 MB serialisation time.
    first_dc = result.points["DCTCP"][0]
    assert first_dc.mean_time == pytest.approx(result.base_time, rel=0.5)
    # DCTCP blows up somewhere in the sweep; DT-DCTCP no earlier.
    assert dc_blowup is not None
    assert dt_blowup is None or dt_blowup >= dc_blowup
    # The jump is roughly one minimum RTO: at the blow-up point the tail
    # already pays it, and by the end of the sweep so does the mean.
    post = [p for p in result.points["DCTCP"] if p.n_flows >= dc_blowup]
    assert post[0].p99_time > 10 * result.base_time
    assert post[-1].mean_time > 10 * result.base_time
