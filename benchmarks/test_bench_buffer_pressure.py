"""Extension benchmark: the buffer-pressure microbenchmark.

Long flows on *other* ports of a shared-memory switch steal the pool an
incast port needs.  DropTail background collapses the incast; marking
(DCTCP or DT-DCTCP) background leaves it at line rate.
"""

from repro.experiments import buffer_pressure


def test_buffer_pressure(run_once):
    results = run_once(buffer_pressure.run)
    by_label = {r.background: r for r in results}
    printable = {
        label: (round(r.incast_goodput_bps / 1e6), r.incast_timeouts,
                round(r.background_queue_peak_bytes / 1024))
        for label, r in by_label.items()
    }
    print(f"\nBuffer pressure (Mbps, timeouts, port-B peak KB): {printable}")

    alone = by_label["none (DCTCP incast alone)"]
    droptail = by_label["Reno long flows, DropTail pool"]
    dctcp = by_label["DCTCP long flows"]
    dt = by_label["DT-DCTCP long flows"]

    # Without pressure the incast runs near line rate.
    assert alone.incast_goodput_bps > 0.9e9
    # DropTail background parks most of the pool on port B and crushes it.
    assert droptail.background_queue_peak_bytes > 0.5 * 256 * 1024
    assert droptail.incast_goodput_bps < alone.incast_goodput_bps / 2
    assert droptail.pool_rejections > 0
    # Marking background keeps the pool free: incast unaffected.
    for marked in (dctcp, dt):
        assert marked.incast_goodput_bps > 0.9e9
        assert marked.incast_timeouts == 0
        assert marked.background_queue_peak_bytes < 0.5 * 256 * 1024
