"""Extension benchmark: known incast mitigations on the testbed.

Past the uncapped collapse point (38 synchronized flows), compare the
classic knobs against stock DCTCP and DT-DCTCP:

* **receive-window cap** — bound each worker to 2 packets in flight so
  the aggregate fits the buffer (application-level mitigation);
* **small min-RTO** — do not prevent the losses, just pay 10 ms instead
  of 200 ms for each;
* **mark-on-dequeue** — shorten the feedback loop by one queueing delay.
"""

from repro.core.marking import SingleThresholdMarker
from repro.experiments.protocols import dctcp_testbed, dt_dctcp_testbed
from repro.sim.apps.incast import FanInApp
from repro.sim.queues import FifoQueue
from repro.sim.topology import paper_testbed

KB = 1024
N_FLOWS = 38


def run_variant(protocol, queries=10, mark_on_dequeue=False, **flow_kwargs):
    testbed = paper_testbed(protocol.marker_factory)
    if mark_on_dequeue:
        replacement = FifoQueue(
            testbed.bottleneck_queue.capacity_bytes,
            marker=protocol.marker_factory(),
            mark_on_dequeue=True,
            name="bottleneck",
        )
        iface = testbed.network.interface_between(
            testbed.core_switch.node_id, testbed.aggregator.node_id
        )
        iface.queue = replacement
    app = FanInApp(
        testbed.aggregator,
        testbed.workers,
        n_flows=N_FLOWS,
        bytes_per_flow=64 * KB,
        n_queries=queries,
        sender_cls=protocol.sender_cls,
        initial_cwnd=2,
        start_jitter=50e-6,
        **flow_kwargs,
    )
    app.start()
    testbed.sim.run(until=60.0 * queries)
    return (
        app.overall_goodput_bps(),
        sum(r.timeouts for r in app.results),
    )


def test_incast_mitigations(run_once):
    def sweep():
        dc = dctcp_testbed()
        dt = dt_dctcp_testbed()
        return {
            "DCTCP stock": run_variant(dc),
            "DT-DCTCP stock": run_variant(dt),
            "DCTCP + rwnd cap 2": run_variant(dc, receive_window=2),
            "DCTCP + 10ms min-RTO": run_variant(dc, min_rto=0.01),
            "DCTCP + dequeue marking": run_variant(
                dc, mark_on_dequeue=True
            ),
        }

    rows = run_once(sweep)
    printable = {
        k: (round(g / 1e6), to) for k, (g, to) in rows.items()
    }
    print(f"\nIncast mitigations at {N_FLOWS} flows (Mbps, timeouts): "
          f"{printable}")
    stock, _ = rows["DCTCP stock"]
    assert stock < 0.5e9  # collapsed without help
    # The window cap prevents the overload entirely.
    capped, capped_to = rows["DCTCP + rwnd cap 2"]
    assert capped > 0.9e9
    assert capped_to == 0
    # A small min-RTO doesn't avoid losses but recovers 20x faster.
    fast_rto, _ = rows["DCTCP + 10ms min-RTO"]
    assert fast_rto > stock * 5
    # Dequeue marking shortens feedback; never worse than stock.
    dequeue, _ = rows["DCTCP + dequeue marking"]
    assert dequeue >= stock * 0.8
