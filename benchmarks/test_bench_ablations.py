"""Ablation benchmarks for the design choices DESIGN.md calls out.

Beyond the paper's figures:

* **threshold-gap sweep** — how wide should (K1, K2) straddle K?  The
  paper picks 30/50 without justification; sweeping the gap shows the
  stability-margin gain is monotone in the gap (theory) and the queue
  std-dev benefit appears at the packet level as well.
* **g sweep** — the alpha gain trades estimation speed against noise;
  the plant's phase crossover moves with it.
* **marking-mechanism bake-off** — DropTail/Reno, RED/ECN-Reno, DCTCP
  and DT-DCTCP on the same dumbbell.
* **deadband sweep** — the packet-level hysteresis needs a direction
  deadband below the threshold gap, or it degenerates (the testbed
  lesson baked into repro.experiments.protocols).
"""

import math

import pytest

from repro.core.marking import DoubleThresholdMarker
from repro.core.parameters import (
    DoubleThresholdParams,
    SingleThresholdParams,
    paper_network,
)
from repro.core.stability import calibrate_gain_scale, stability_margin
from repro.core.transfer_function import open_loop
from repro.experiments.protocols import (
    ProtocolConfig,
    dctcp_sim,
    dt_dctcp_sim,
    ecn_red_baseline,
)
from repro.experiments.queue_sweep import run_point
from repro.sim.tcp.cubic import CubicSender
from repro.sim.tcp.sender import DctcpSender, RenoSender


def test_ablation_threshold_gap_margin(run_once):
    """Stability margin grows monotonically with the hysteresis gap."""

    def sweep():
        net = paper_network(55)
        scale = calibrate_gain_scale(
            paper_network(10), SingleThresholdParams(40.0), onset_flows=60
        )
        margins = []
        for gap in (0.0, 5.0, 10.0, 20.0, 30.0):
            params = DoubleThresholdParams(k1=40.0 - gap / 2, k2=40.0 + gap / 2)
            margins.append(
                (gap, stability_margin(net, params, loop_gain_scale=scale))
            )
        return margins

    margins = run_once(sweep)
    print(f"\nAblation gap->margin at N=55: {margins}")
    values = [m for _, m in margins]
    assert values == sorted(values)
    # Degenerate gap 0 equals DCTCP: margin ~ 0 at the calibrated scale.
    assert values[0] == pytest.approx(0.0, abs=0.05)
    assert values[-1] > 0.2


def test_ablation_g_sweep_crossover(run_once):
    """Larger g speeds alpha but drags the phase crossover lower."""

    def sweep():
        rows = []
        for g in (1 / 32, 1 / 16, 1 / 4):
            net = paper_network(40, g=g)
            import numpy as np

            w = np.geomspace(1e3, 1e6, 20000)
            vals = open_loop(w, net) / 40.0
            phase = np.unwrap(np.angle(vals))
            idx = int(np.argmin(np.abs(phase + math.pi)))
            rows.append((g, float(w[idx]), float(abs(vals[idx]))))
        return rows

    rows = run_once(sweep)
    print(f"\nAblation g -> (w180, |K0 G|): {rows}")
    freqs = [w for _, w, _ in rows]
    assert freqs == sorted(freqs, reverse=True)  # bigger g, earlier pole


def test_ablation_mechanism_bakeoff(run_once, bench_scale):
    """All four mechanisms on the same pipe at N = 10."""

    def bakeoff():
        from repro.core.marking import NullMarker

        configs = [
            ProtocolConfig("DropTail-Reno", lambda: NullMarker(), RenoSender),
            ProtocolConfig("DropTail-CUBIC", lambda: NullMarker(),
                           CubicSender),
            ecn_red_baseline(),
            dctcp_sim(),
            dt_dctcp_sim(),
        ]
        return {
            c.name: run_point(c, 10, bench_scale) for c in configs
        }

    results = run_once(bakeoff)
    rows = {
        name: (round(p.mean_queue, 1), round(p.std_queue, 1),
               round(p.goodput_bps / 1e9, 2))
        for name, p in results.items()
    }
    print(f"\nAblation bake-off (mean q, std q, Gbps): {rows}")
    # ECN-based mechanisms keep the queue near their thresholds...
    assert results["DCTCP"].mean_queue < 70
    assert results["DT-DCTCP"].mean_queue < 70
    # ...and full throughput.
    assert results["DCTCP"].goodput_bps > 9e9
    assert results["DT-DCTCP"].goodput_bps > 9e9
    # Loss-based stacks drop packets on this pipe (synchronized
    # slow-start overshoot; no ECN brake).
    assert results["DropTail-Reno"].drops > 0
    assert results["DropTail-CUBIC"].drops > 0
    assert results["DropTail-Reno"].goodput_bps < results["DCTCP"].goodput_bps
    # DT-DCTCP's oscillation is the smallest of the ECN mechanisms.
    assert results["DT-DCTCP"].std_queue <= results["DCTCP"].std_queue * 1.05
    assert results["DT-DCTCP"].std_queue <= results["RED-ECN"].std_queue


def test_ablation_deadband_must_stay_below_gap(run_once, bench_scale):
    """A deadband comparable to the K2-K1 gap degenerates DT-DCTCP into
    an effective single threshold: its std advantage disappears."""

    def sweep():
        rows = {}
        for deadband in (0.5, 2.0, 25.0):
            config = ProtocolConfig(
                name=f"DT-db{deadband}",
                marker_factory=lambda d=deadband: (
                    DoubleThresholdMarker.from_thresholds(30, 50, deadband=d)
                ),
                sender_cls=DctcpSender,
            )
            rows[deadband] = run_point(config, 10, bench_scale)
        return rows

    rows = run_once(sweep)
    printable = {k: round(v.std_queue, 2) for k, v in rows.items()}
    print(f"\nAblation deadband -> std q: {printable}")
    # A deadband beyond the gap behaves no better than the moderate one.
    assert rows[25.0].std_queue >= rows[2.0].std_queue * 0.8
