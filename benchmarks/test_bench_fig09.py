"""Benchmark: Figure 9 — oscillation onset versus flow count.

Regenerates the stability-margin sweep under the calibrated gain scale
(see repro.core.stability's module docstring) and checks the paper's
comparison: DCTCP's loci intersect at some N, DT-DCTCP's never do, and
DT-DCTCP's margin exceeds DCTCP's at every flow count.
"""

from repro.experiments import fig09_critical_n


def test_fig09_critical_flow_count(run_once):
    result = run_once(fig09_critical_n.run, tuple(range(10, 101, 5)))
    print(
        f"\nFigure 9: DCTCP onset N = {result.dc_critical_n} (paper ~60 "
        f"under its gain convention), DT-DCTCP onset N = "
        f"{result.dt_critical_n} (paper ~70; here: margin never closes)"
    )
    assert result.dc_critical_n is not None
    assert result.dt_critical_n is None
    assert result.dt_margin_always_larger
    if result.dc_limit_cycle is not None:
        amp, freq = result.dc_limit_cycle
        assert amp > 40.0
        assert freq > 0.0
